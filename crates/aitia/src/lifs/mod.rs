//! Least Interleaving First Search (§3.3).
//!
//! LIFS reproduces a reported concurrency failure by exploring thread
//! interleavings in increasing order of *interleaving count* — the number of
//! preemptions performed at memory-accessing instructions — based on the
//! observation that most concurrency failures need only one or two
//! preemptions to manifest.
//!
//! The search proceeds exactly as the paper's Figure 5 walkthrough:
//!
//! 1. **Interleaving count 0** — every serial order of the slice's threads
//!    runs to completion. These runs seed the knowledge base: each thread's
//!    memory-accessing instructions (front to back) and address footprint.
//! 2. **Count c ≥ 1** — candidate plans preempt a thread right *after* one
//!    of its memory-accessing instructions (so the installed watchpoint can
//!    observe conflicting accesses by the threads that run next) and switch
//!    to another thread. Candidates are enumerated front to back.
//! 3. **Pruning** (dynamic partial-order reduction flavour, toggleable for
//!    ablation): a preemption whose instruction touches only addresses no
//!    other thread ever touches cannot change the conflict order — skipped;
//!    a preemption after a thread's *last* memory access is equivalent to a
//!    serial order — skipped; an executed run whose conflict-order signature
//!    was already seen contributes nothing new and is recorded as
//!    equivalent.
//! 4. New memory-accessing instructions revealed by race-steered control
//!    flows (previously unexecuted code) join the candidate set on the fly.
//!
//! The search stops at the first failing run and emits the failure-causing
//! instruction sequence together with every data race observed in it —
//! including races whose second access is *pending* (the failure killed the
//! thread first), which Causality Analysis must still test (Figure 6's
//! `B17 ⇒ A12`).

pub mod tree;

use crate::{
    enforce::{
        EnforceConfig,
        RunResult,
        ThreadFinal, //
    },
    exec::{
        CancelToken,
        ExecJob,
        ExecOutput,
        Executor, //
    },
    race::{
        races_in_trace,
        ObservedRace,
        RaceEnd, //
    },
    schedule::{
        Anchor,
        SchedPoint,
        Schedule,
        ThreadSel, //
    },
    simtime::SimCost,
};
use ksim::{
    Addr,
    Failure,
    InstrAddr,
    Program,
    StepRecord,
    ThreadId,
    Trace, //
};
use std::{
    collections::{
        BTreeMap,
        BTreeSet,
        HashMap,
        HashSet, //
    },
    hash::{
        Hash,
        Hasher, //
    },
    sync::Arc,
};
use tree::{
    NodeOutcome,
    PreemptionDesc,
    SearchNode,
    SearchTree, //
};

/// The failure signature LIFS reproduces, extracted from the crash report
/// (§4.2: "AITIA identifies the symptom of the failure ... and the location
/// of the failure"). Runs that fail *differently* are not reproductions of
/// the reported bug and the search continues past them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureTarget {
    /// The failure class from the report.
    pub kind: ksim::FailureKind,
    /// The faulting kernel function, when the report resolves it.
    pub func: Option<String>,
}

impl FailureTarget {
    /// A target matching any failure of `kind`.
    #[must_use]
    pub fn kind(kind: ksim::FailureKind) -> Self {
        FailureTarget { kind, func: None }
    }

    /// A target matching `kind` inside the named kernel function.
    #[must_use]
    pub fn in_func(kind: ksim::FailureKind, func: &str) -> Self {
        FailureTarget {
            kind,
            func: Some(func.to_string()),
        }
    }

    /// Whether `failure` matches this signature.
    #[must_use]
    pub fn matches(&self, failure: &Failure, program: &Program) -> bool {
        if failure.kind != self.kind {
            return false;
        }
        match &self.func {
            None => true,
            Some(f) => program
                .meta_at(failure.at)
                .is_some_and(|m| m.func == f.as_str()),
        }
    }
}

/// How aggressively LIFS prunes the schedule space before execution.
///
/// The levels are strictly ordered: each one applies every rule of the
/// level below it, so `Dpor ≥ Conflict ≥ Off` in schedules skipped. All
/// levels are *diagnosis-preserving*: every pruned plan is Mazurkiewicz-
/// equivalent to a plan scheduled earlier in the canonical generation
/// order (or to a serial run), so the first failing schedule — and with it
/// the entire diagnosis — is identical at every level. The differential
/// harness in `tests/properties.rs` checks exactly that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PruneLevel {
    /// No pruning: every candidate preemption point × target is executed.
    Off,
    /// Conflict-based pruning (the seed behaviour, and the default):
    /// points whose accesses conflict with no other thread are skipped, as
    /// are preemptions after a thread's final memory access.
    #[default]
    Conflict,
    /// Full dynamic partial-order reduction: conflict pruning plus
    /// sleep-set pruning (a preemption that re-creates an interleaving
    /// already explored from an equivalent earlier prefix is never
    /// regenerated) and persistent-set pruning (plans provably equivalent
    /// to a serial order are cut), both validated step-by-step against the
    /// victim's solo trace through the write-aware
    /// [`crate::race::ConflictIndex`].
    Dpor,
}

impl std::str::FromStr for PruneLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(PruneLevel::Off),
            "conflict" => Ok(PruneLevel::Conflict),
            "dpor" => Ok(PruneLevel::Dpor),
            other => Err(format!(
                "unknown prune level {other:?} (expected off, conflict or dpor)"
            )),
        }
    }
}

impl std::fmt::Display for PruneLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PruneLevel::Off => "off",
            PruneLevel::Conflict => "conflict",
            PruneLevel::Dpor => "dpor",
        })
    }
}

/// LIFS configuration.
#[derive(Clone, Debug)]
pub struct LifsConfig {
    /// Maximum interleaving count explored before giving up.
    pub max_interleavings: u32,
    /// Enforcement limits per run.
    pub enforce: EnforceConfig,
    /// Schedule-space pruning level (lower it for the ablation bench).
    pub prune: PruneLevel,
    /// Hard cap on executed schedules.
    pub max_schedules: usize,
    /// The reported failure to reproduce. `None` accepts any failure.
    pub target: Option<FailureTarget>,
    /// Cooperative cancellation: an in-flight search aborts at the next
    /// schedule boundary. Statistics still count the deterministically
    /// folded prefix of completed schedules.
    pub cancel: CancelToken,
}

impl Default for LifsConfig {
    fn default() -> Self {
        LifsConfig {
            max_interleavings: 4,
            enforce: EnforceConfig::default(),
            prune: PruneLevel::default(),
            max_schedules: 200_000,
            target: None,
            cancel: CancelToken::new(),
        }
    }
}

/// Search statistics (the LIFS columns of Tables 2 and 3).
#[derive(Clone, Debug, Default)]
pub struct LifsStats {
    /// Schedules actually executed.
    pub schedules_executed: usize,
    /// Candidates skipped because the preemption point conflicts with
    /// nothing.
    pub pruned_nonconflicting: usize,
    /// Candidates skipped or discounted as equivalent interleavings.
    pub pruned_equivalent: usize,
    /// Candidates skipped by the DPOR sleep-set rule: the preemption
    /// re-creates an interleaving already explored from an equivalent
    /// earlier prefix of the same victim.
    pub pruned_sleep_set: usize,
    /// Candidates skipped by the DPOR persistent-set rule: the plan is
    /// provably equivalent to an already-explored serial order.
    pub pruned_persistent: usize,
    /// Schedules whose every execution attempt hit a VM fault; they
    /// contribute no observation (not counted in `schedules_executed`).
    pub faulted: usize,
    /// The interleaving count at which the failure reproduced.
    pub interleaving_count: u32,
    /// Simulated cost (schedule setups, steps, reboots, retry backoff).
    pub sim: SimCost,
    /// Schedules served from the process-wide result memo table (counted
    /// in `schedules_executed` and `sim` exactly like executed ones, so
    /// diagnosis statistics stay memo-invariant; the avoided cost is
    /// tracked in `sim_time_saved_s` instead).
    pub memo_hits: usize,
    /// Snapshot-forest restores consumed by this search's executions.
    pub forest_hits: usize,
    /// Simulated seconds of serial execution the memo hits avoided (at
    /// default cost-model rates; see `CostModel::serial_run_s`).
    pub sim_time_saved_s: f64,
    /// Whether a deadline budget fired during the search, making its
    /// result a best-so-far frontier rather than an exhausted one. Always
    /// false without a configured [`crate::exec::DeadlineBudget`].
    pub deadline_fired: bool,
}

impl LifsStats {
    /// Folds another search's statistics into this one. Counters add;
    /// the interleaving count keeps the maximum reached by either search.
    pub fn merge(&mut self, other: &LifsStats) {
        self.schedules_executed += other.schedules_executed;
        self.pruned_nonconflicting += other.pruned_nonconflicting;
        self.pruned_equivalent += other.pruned_equivalent;
        self.pruned_sleep_set += other.pruned_sleep_set;
        self.pruned_persistent += other.pruned_persistent;
        self.faulted += other.faulted;
        self.interleaving_count = self.interleaving_count.max(other.interleaving_count);
        self.sim.merge(&other.sim);
        self.memo_hits += other.memo_hits;
        self.forest_hits += other.forest_hits;
        self.sim_time_saved_s += other.sim_time_saved_s;
        self.deadline_fired |= other.deadline_fired;
    }

    /// Folds one executor output's memoization accounting into the
    /// search's counters. The output itself is consumed exactly as if it
    /// had executed — `schedules_executed` and `sim` are charged by the
    /// caller either way — so this touches only the hit diagnostics.
    pub(crate) fn note_exec(&mut self, out: &crate::exec::ExecOutput) {
        self.memo_hits += usize::from(out.memo_hit);
        self.forest_hits += out.forest_hits as usize;
        if out.memo_hit {
            self.sim_time_saved_s += crate::simtime::CostModel::default()
                .serial_run_s(out.run.steps, out.run.failure.is_some());
        }
    }
}

/// The failure-causing instruction sequence and everything Causality
/// Analysis needs alongside it.
#[derive(Clone, Debug)]
pub struct FailingRun {
    /// The program the run executed.
    pub program: Arc<Program>,
    /// The schedule that reproduced the failure.
    pub schedule: Schedule,
    /// The executed trace — the totally ordered failure-causing sequence.
    /// Structurally shared (cloning bumps reference counts).
    pub trace: Trace,
    /// The manifested failure.
    pub failure: Failure,
    /// Data races in the failing sequence (backward-sorted), including
    /// pending-second races.
    pub races: Vec<ObservedRace>,
    /// Per-thread solo traces from serial runs (control-flow projections
    /// for pending-tail scheduling).
    pub solo: HashMap<ThreadSel, Vec<StepRecord>>,
    /// Final thread states of the failing run.
    pub finals: Vec<ThreadFinal>,
    /// Runtime-thread → selector map for the failing run.
    pub sel_of_tid: HashMap<ThreadId, ThreadSel>,
}

impl FailingRun {
    /// The selector of a runtime thread in the failing run.
    ///
    /// # Panics
    ///
    /// Panics when the thread did not participate in the failing run.
    #[must_use]
    pub fn sel(&self, tid: ThreadId) -> ThreadSel {
        self.sel_of_tid[&tid]
    }

    /// The parked next-instruction map for suspended threads.
    #[must_use]
    pub fn pending_next(&self) -> HashMap<ThreadSel, InstrAddr> {
        self.finals
            .iter()
            .filter_map(|f| f.next.map(|n| (f.sel, n)))
            .collect()
    }
}

/// Output of a LIFS search.
#[derive(Clone, Debug)]
pub struct LifsOutput {
    /// The failing run, when the failure reproduced.
    pub failing: Option<FailingRun>,
    /// Search statistics.
    pub stats: LifsStats,
    /// The recorded search tree (Figure 5).
    pub tree: SearchTree,
}

/// Canonical identity of a candidate plan (for deduplication).
type PlanKey = Vec<(u16, u32, usize, u32, u16, u32)>;

/// One preemption of a candidate plan.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Preemption {
    victim: ThreadSel,
    at: InstrAddr,
    nth: u32,
    target: ThreadSel,
}

/// Accumulated dynamic knowledge about the slice's threads.
#[derive(Default)]
struct Knowledge {
    /// All thread selectors ever observed (initial + spawned), in first-seen
    /// order.
    sels: Vec<ThreadSel>,
    /// Memory-access occurrence list per thread, front to back.
    mem_points: BTreeMap<ThreadSel, Vec<(InstrAddr, u32)>>,
    /// Addresses accessed at each occurrence.
    point_addrs: HashMap<(ThreadSel, InstrAddr, u32), BTreeSet<Addr>>,
    /// Address footprint per thread.
    footprints: BTreeMap<ThreadSel, BTreeSet<Addr>>,
    /// Racing instruction pairs (unordered, normalized) seen in any run.
    known_pairs: HashSet<(InstrAddr, InstrAddr)>,
    /// Conflict-order signatures of executed runs.
    signatures: HashSet<u64>,
    /// Latest complete solo-ish trace per thread.
    solo: HashMap<ThreadSel, Vec<StepRecord>>,
    /// Per-thread projection of a serial run in which the thread ran
    /// *first* (uninterrupted from the initial state) — the exact
    /// prediction of a count-1 plan's pre-preemption prefix, which is what
    /// the DPOR rules validate against. Absent when every serial run with
    /// the thread first faulted or failed, in which case no DPOR rule may
    /// fire for that victim (a faulted node must not seed a sleep set).
    solo_first: HashMap<ThreadSel, Vec<StepRecord>>,
    /// Write-aware per-thread address sets over every absorbed run; the
    /// static conflict index the DPOR rules query.
    conflicts: crate::race::ConflictIndex,
    /// Whether any serial (count-0) permutation was lost to a VM fault.
    /// The persistent-set rule compares plans against serial runs, so it
    /// is disabled when a serial observation is missing.
    serial_faults: bool,
    /// Knowledge version (bumped per absorbed run) for cache invalidation.
    version: u64,
}

impl Knowledge {
    fn note_sel(&mut self, sel: ThreadSel) {
        if !self.sels.contains(&sel) {
            self.sels.push(sel);
        }
    }

    /// Folds an executed run into the knowledge base. Returns whether the
    /// run's conflict signature was new.
    fn absorb(&mut self, run: &RunResult, sel_of: &HashMap<ThreadId, ThreadSel>) -> bool {
        // Per-thread access sequences.
        let mut per_thread: BTreeMap<ThreadSel, Vec<(InstrAddr, BTreeSet<Addr>)>> = BTreeMap::new();
        for rec in &run.trace {
            let sel = sel_of[&rec.tid];
            self.note_sel(sel);
            self.conflicts.add_steps(sel, std::iter::once(rec));
            if rec.accesses.is_empty() {
                continue;
            }
            let addrs: BTreeSet<Addr> = rec.accesses.iter().map(|a| a.addr).collect();
            per_thread.entry(sel).or_default().push((rec.at, addrs));
        }
        for (sel, seq) in per_thread {
            let mut counts: HashMap<InstrAddr, u32> = HashMap::new();
            let mut points = Vec::with_capacity(seq.len());
            for (at, addrs) in seq {
                let nth = *counts.entry(at).and_modify(|c| *c += 1).or_insert(0);
                points.push((at, nth));
                self.point_addrs
                    .entry((sel, at, nth))
                    .or_default()
                    .extend(addrs.iter().copied());
                self.footprints.entry(sel).or_default().extend(addrs);
            }
            // Keep the longest observed point list per thread (race-steered
            // flows can reveal longer paths).
            let entry = self.mem_points.entry(sel).or_default();
            if points.len() > entry.len() {
                *entry = points;
            } else {
                // Merge newly seen points at the tail.
                let known: HashSet<(InstrAddr, u32)> = entry.iter().copied().collect();
                for p in points {
                    if !known.contains(&p) {
                        entry.push(p);
                    }
                }
            }
        }
        // Racing pairs — including critical-section order pairs, which
        // Causality Analysis tests as units (§3.4).
        for r in races_in_trace(&run.trace) {
            let (a, b) = r.unordered_key();
            self.known_pairs.insert((a, b));
        }
        for r in crate::race::cs_order_races(&run.trace) {
            let (a, b) = r.unordered_key();
            self.known_pairs.insert((a, b));
        }
        // Signature: order of conflicting accesses.
        self.version += 1;
        let sig = conflict_signature(&run.trace, sel_of);
        self.signatures.insert(sig)
    }

    /// Whether the occurrence's addresses conflict with any *other* thread's
    /// footprint.
    fn conflicts_somewhere(&self, sel: ThreadSel, at: InstrAddr, nth: u32) -> bool {
        let Some(addrs) = self.point_addrs.get(&(sel, at, nth)) else {
            return true; // Unknown: conservatively keep.
        };
        self.footprints
            .iter()
            .filter(|(s, _)| **s != sel)
            .any(|(_, fp)| addrs.iter().any(|a| fp.contains(a)))
    }

    /// The observability-refined version of
    /// [`Knowledge::conflicts_somewhere`], used by [`PruneLevel::Dpor`]:
    /// commutative unobserved adds ([`crate::race::AccessClass::Add`])
    /// conflict only with genuine reads or writes of the address, so a
    /// point whose accesses meet other threads exclusively in add/add
    /// pairs cannot change any observable order.
    fn conflicts_somewhere_refined(&self, sel: ThreadSel, at: InstrAddr, nth: u32) -> bool {
        let Some(addrs) = self.point_addrs.get(&(sel, at, nth)) else {
            return true; // Unknown: conservatively keep.
        };
        addrs
            .iter()
            .any(|&a| self.conflicts.addr_conflicts_any_other(a, at, sel))
    }
}

/// Identity of a pruned candidate. Point-level rules (non-conflicting,
/// last-access) prune a whole point and carry no target; the DPOR rules
/// decide per `(point, target)` pair and carry the target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct PruneKey {
    victim: ThreadSel,
    at: InstrAddr,
    nth: u32,
    target: Option<ThreadSel>,
}

/// Records pruned candidates, deduplicated *per knowledge version*, so the
/// search tree and statistics count each skipped candidate exactly once.
///
/// Generation re-examines every candidate each round against the current
/// knowledge, so the same key is re-noted many times: a same-version
/// re-note is a no-op and a newer-version re-note updates the recorded
/// reason in place without double counting. A candidate that *stops* being
/// pruned under newer knowledge (footprints grew and the point now
/// conflicts) is [`PruneLog::unnote`]d — it is about to be generated and
/// executed, and a stale pending entry would count it as both.
#[derive(Default)]
struct PruneLog {
    /// Key → knowledge version of the latest note.
    seen: HashMap<PruneKey, u64>,
    /// First-noted order of keys (drives deterministic flush order).
    order: Vec<PruneKey>,
    /// Current reason per still-pruned key.
    reasons: HashMap<PruneKey, NodeOutcome>,
}

impl PruneLog {
    fn note(&mut self, key: PruneKey, version: u64, reason: NodeOutcome) {
        if self.seen.get(&key) == Some(&version) {
            return;
        }
        self.seen.insert(key, version);
        self.reasons.insert(key, reason);
        if !self.order.contains(&key) {
            self.order.push(key);
        }
    }

    /// Drops a pending entry: the candidate became generative under newer
    /// knowledge, so it is no longer pruned.
    fn unnote(&mut self, key: &PruneKey) {
        self.seen.remove(key);
        self.reasons.remove(key);
    }

    fn flush(&mut self, stats: &mut LifsStats, tree: &mut SearchTree, order: &mut usize) {
        for key in self.order.drain(..) {
            let Some(reason) = self.reasons.remove(&key) else {
                continue; // Unnoted: executed after all, already counted.
            };
            match reason {
                NodeOutcome::PrunedNonConflicting => stats.pruned_nonconflicting += 1,
                NodeOutcome::PrunedSleepSet => stats.pruned_sleep_set += 1,
                NodeOutcome::PrunedPersistent => stats.pruned_persistent += 1,
                _ => stats.pruned_equivalent += 1,
            }
            *order += 1;
            tree.nodes.push(SearchNode {
                order: *order,
                interleavings: 1,
                plan: vec![PreemptionDesc {
                    victim: key.victim,
                    at: key.at,
                    nth: key.nth,
                    target: key.target.unwrap_or(key.victim),
                }],
                serial_order: vec![],
                outcome: reason,
                steps: 0,
            });
        }
        self.seen.clear();
    }
}

/// Per-target commutation data computed lazily by [`DporCtx`].
struct TargetCtx {
    /// Per solo step: the step is clean (no locks held, no lock event, no
    /// spawn) and every access is write-aware non-conflicting with the
    /// target and with every thread the shared set names.
    ok: Vec<bool>,
    /// For each step `j` with `ok[j]`: the smallest `m` such that every
    /// step in `[m, j]` is ok (the start of the contiguous ok-run).
    run_start: Vec<usize>,
    /// The smallest `m` such that every step in `[m, len)` is ok.
    tail_start: usize,
    /// Whether the persistent-set rule may fire for this target at all:
    /// the target is an initial thread (its serial permutation exists),
    /// every serial run was observed (no VM faults), and the target's
    /// footprint commutes with every background thread's.
    persist_ok: bool,
}

/// Per-victim DPOR context for count-1 plan generation.
///
/// A count-1 plan `[(v, p) → T]` runs the victim uninterrupted from the
/// initial state to point `p`, switches to `T`, and then resolves through
/// the enforcer's deterministic fallback (background threads first, then
/// the remaining initial order). The victim's pre-preemption prefix is
/// therefore *exactly* the stored `solo_first` projection, which lets two
/// rules fire soundly at generation time:
///
/// * **Sleep set** — if every victim step between an earlier generated
///   point `q` and `p` is clean and commutes (write-aware) with the target
///   and with every thread scheduled between the two possible positions of
///   that segment, then `[(v, p) → T]` and `[(v, q) → T]` are
///   Mazurkiewicz-equivalent; the earlier plan already covers the class.
/// * **Persistent set** — if every victim step *after* `p` commutes the
///   same way and the target's block commutes with the background threads,
///   the plan is equivalent to the serial permutation `[v, T, …]` explored
///   at count 0; the class already has its serial representative.
///
/// Victims without a `solo_first` projection (their serial run faulted or
/// failed) get no context and no DPOR pruning — a faulted node never seeds
/// a sleep set.
struct DporCtx<'a> {
    solo: &'a [StepRecord],
    /// Candidate point `(at, nth)` → index into the solo trace.
    pos: HashMap<(InstrAddr, u32), usize>,
    /// Clean and commuting with the target-independent shared set
    /// (background threads + initial threads resumed before the victim).
    base_ok: Vec<bool>,
    /// Observed background (spawned) threads.
    bg: Vec<ThreadSel>,
    conflicts: &'a crate::race::ConflictIndex,
    /// Whether every serial permutation executed (no VM faults).
    serial_ok: bool,
    initial: &'a [ThreadSel],
    /// Lazily computed per-target data.
    targets: HashMap<ThreadSel, TargetCtx>,
}

impl<'a> DporCtx<'a> {
    fn new(
        program: &Program,
        k: &'a Knowledge,
        victim: ThreadSel,
        initial: &'a [ThreadSel],
    ) -> Option<Self> {
        let solo = k.solo_first.get(&victim)?.as_slice();
        let vpos = initial.iter().position(|&s| s == victim)?;
        let mut pos = HashMap::new();
        let mut counts: HashMap<InstrAddr, u32> = HashMap::new();
        for (i, rec) in solo.iter().enumerate() {
            if rec.accesses.is_empty() {
                continue;
            }
            let nth = *counts.entry(rec.at).and_modify(|c| *c += 1).or_insert(0);
            pos.insert((rec.at, nth), i);
        }
        // Threads whose blocks sit between a moved segment's two possible
        // positions regardless of target: spawned background threads (they
        // run first at the post-target boundary) and initial threads the
        // fallback resumes before the victim. IRQ handlers only run when
        // targeted, so they are excluded here and checked per target.
        let irqs: HashSet<ThreadSel> = program
            .irq_handlers
            .iter()
            .map(|&i| ThreadSel::first(i))
            .collect();
        let bg: Vec<ThreadSel> = k
            .sels
            .iter()
            .copied()
            .filter(|s| !initial.contains(s) && !irqs.contains(s))
            .collect();
        let shared: Vec<ThreadSel> = bg
            .iter()
            .copied()
            .chain(initial[..vpos].iter().copied())
            .collect();
        let base_ok: Vec<bool> = solo
            .iter()
            .map(|rec| {
                rec.locks_held.is_empty()
                    && rec.lock_event.is_none()
                    && rec.spawned.is_none()
                    && rec.accesses.iter().all(|a| {
                        shared
                            .iter()
                            .all(|&s| !k.conflicts.may_conflict(a.addr, a.kind, rec.at, s))
                    })
            })
            .collect();
        Some(DporCtx {
            solo,
            pos,
            base_ok,
            bg,
            conflicts: &k.conflicts,
            serial_ok: !k.serial_faults,
            initial,
            targets: HashMap::new(),
        })
    }

    fn target_ctx(&mut self, target: ThreadSel) -> &TargetCtx {
        if !self.targets.contains_key(&target) {
            let ok: Vec<bool> = self
                .solo
                .iter()
                .zip(&self.base_ok)
                .map(|(rec, &base)| {
                    base && rec
                        .accesses
                        .iter()
                        .all(|a| !self.conflicts.may_conflict(a.addr, a.kind, rec.at, target))
                })
                .collect();
            let mut run_start = vec![0usize; ok.len()];
            for j in 0..ok.len() {
                if ok[j] {
                    run_start[j] = if j > 0 && ok[j - 1] {
                        run_start[j - 1]
                    } else {
                        j
                    };
                }
            }
            let mut tail_start = ok.len();
            for j in (0..ok.len()).rev() {
                if ok[j] {
                    tail_start = j;
                } else {
                    break;
                }
            }
            let persist_ok = self.serial_ok
                && self.initial.contains(&target)
                && self
                    .bg
                    .iter()
                    .all(|&b| !self.conflicts.sels_may_conflict(target, b));
            self.targets.insert(
                target,
                TargetCtx {
                    ok,
                    run_start,
                    tail_start,
                    persist_ok,
                },
            );
        }
        &self.targets[&target]
    }

    /// Decides whether the count-1 candidate `[(victim, point at solo
    /// index `s_p`) → target]` is pruned, given the solo positions of the
    /// victim's already-generated points (`surv`, ascending).
    fn prune(&mut self, s_p: usize, surv: &[usize], target: ThreadSel) -> Option<NodeOutcome> {
        let tc = self.target_ctx(target);
        // Sleep set: the segment (q, s_p] commutes across everything that
        // separates the two preemption positions, so the plan re-creates
        // the interleaving already explored from the earlier point q.
        if tc.ok[s_p] {
            let lowest = tc.run_start[s_p];
            if let Some(&q) = surv.iter().rev().find(|&&q| q < s_p) {
                if q + 1 >= lowest {
                    return Some(NodeOutcome::PrunedSleepSet);
                }
            }
        }
        // Persistent set: everything after the point commutes away — the
        // plan collapses to the serial permutation [victim, target, …].
        if tc.persist_ok && s_p + 1 >= tc.tail_start {
            return Some(NodeOutcome::PrunedPersistent);
        }
        None
    }
}

/// Hashes the order of conflicting access pairs of a trace (the
/// Mazurkiewicz-trace equivalence class over conflicting operations).
fn conflict_signature(trace: &Trace, sel_of: &HashMap<ThreadId, ThreadSel>) -> u64 {
    let evts = crate::race::accesses(trace);
    let mut by_addr: HashMap<Addr, Vec<usize>> = HashMap::new();
    for (i, e) in evts.iter().enumerate() {
        by_addr.entry(e.addr).or_default().push(i);
    }
    let mut pairs: Vec<(InstrAddr, InstrAddr, Addr)> = Vec::new();
    for (addr, idxs) in &by_addr {
        // Thread-private or read-only locations contribute no conflicts.
        let first_tid = evts[idxs[0]].tid;
        if idxs.iter().all(|&i| evts[i].tid == first_tid) || idxs.iter().all(|&i| !evts[i].is_write)
        {
            continue;
        }
        for (pos, &i) in idxs.iter().enumerate() {
            for &j in &idxs[pos + 1..] {
                let (a, b) = (&evts[i], &evts[j]);
                if a.tid == b.tid || !(a.is_write || b.is_write) {
                    continue;
                }
                let (first, second) = if a.seq <= b.seq { (a, b) } else { (b, a) };
                pairs.push((first.at, second.at, *addr));
            }
        }
    }
    pairs.sort();
    pairs.dedup();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for p in &pairs {
        (p.0, p.1, p.2 .0).hash(&mut h);
    }
    // Include which thread programs participated (distinguishes serial
    // orders that execute different race-steered paths).
    let mut sels: Vec<ThreadSel> = sel_of.values().copied().collect();
    sels.sort();
    for s in sels {
        (s.prog.0, s.occurrence).hash(&mut h);
    }
    trace.len().hash(&mut h);
    h.finish()
}

/// The LIFS searcher for one program (slice).
///
/// All schedule execution goes through the shared VM-pool executor
/// ([`crate::exec`]): each preemption round's candidate schedules are
/// submitted as one batch and the results are folded into the knowledge
/// base in canonical submission order, so the search outcome — failing
/// schedule, statistics, tree — is bit-for-bit identical at any worker
/// count.
pub struct Lifs {
    program: Arc<Program>,
    config: LifsConfig,
    exec: Arc<Executor>,
}

impl Lifs {
    /// Creates a searcher executing on a private single-worker VM.
    #[must_use]
    pub fn new(program: Arc<Program>, config: LifsConfig) -> Self {
        Lifs::with_executor(program, config, Arc::new(Executor::new(1)))
    }

    /// Creates a searcher executing its schedule batches on `exec`.
    #[must_use]
    pub fn with_executor(program: Arc<Program>, config: LifsConfig, exec: Arc<Executor>) -> Self {
        Lifs {
            program,
            config,
            exec,
        }
    }

    /// Runs the search.
    #[must_use]
    pub fn search(&self) -> LifsOutput {
        // One stamping point for the deadline flag covers every early
        // return inside the search body.
        let mut out = self.search_inner();
        out.stats.deadline_fired = self.exec.deadline_fired();
        out
    }

    fn search_inner(&self) -> LifsOutput {
        let mut stats = LifsStats::default();
        let mut tree = SearchTree::default();
        let mut knowledge = Knowledge {
            conflicts: crate::race::ConflictIndex::for_program(&self.program),
            ..Knowledge::default()
        };
        let mut order = 0usize;

        let initial_sels = initial_sels(&self.program);
        for &s in &initial_sels {
            knowledge.note_sel(s);
        }
        // Hardware-IRQ handlers join the interleaving universe up front:
        // switching to one at a preemption point makes the enforcer inject
        // it (the paper's §4.6 future-work case).
        for &irq in &self.program.irq_handlers {
            knowledge.note_sel(ThreadSel::first(irq));
        }

        // Interleaving count 0: serial permutations, one batch. The fold
        // below replays the batch front to back, so "first failing schedule
        // wins" is preserved no matter which worker found it.
        let perms = permutations(&initial_sels);
        let jobs: Vec<ExecJob> = perms
            .iter()
            .map(|perm| self.job(Schedule::serial(perm.clone())))
            .collect();
        let results = self.run_batch(&jobs);
        for (perm, res) in perms.iter().zip(results) {
            let Some(out) = res else {
                // Cancelled mid-batch: the folded prefix is all we count.
                return LifsOutput {
                    failing: None,
                    stats,
                    tree,
                };
            };
            order += 1;
            stats.sim.add_retries(out.retries as usize);
            stats.note_exec(&out);
            if out.vm_faulted.is_some() {
                // The run produced no observation: nothing to absorb, no
                // failure to check — record the loss and move on. A missing
                // serial observation also disables the persistent-set rule
                // (it compares plans against serial runs).
                knowledge.serial_faults = true;
                stats.faulted += 1;
                tree.nodes.push(SearchNode {
                    order,
                    interleavings: 0,
                    plan: vec![],
                    serial_order: perm.clone(),
                    outcome: NodeOutcome::Faulted,
                    steps: 0,
                });
                continue;
            }
            stats.schedules_executed += 1;
            stats.sim.add_run(out.run.steps, out.run.failure.is_some());
            let fresh = knowledge.absorb(&out.run, &out.sel_of);
            if !fresh {
                stats.pruned_equivalent += 1;
            }
            let failed = self.is_target_failure(&out.run);
            tree.nodes.push(SearchNode {
                order,
                interleavings: 0,
                plan: vec![],
                serial_order: perm.clone(),
                outcome: if failed {
                    NodeOutcome::Failure
                } else {
                    NodeOutcome::NoFailure
                },
                steps: out.run.steps,
            });
            // Remember solo traces (per-thread projections) from successful
            // serial runs. The permutation's first thread ran uninterrupted
            // from the initial state: its projection is the exact prediction
            // of a count-1 plan's pre-preemption prefix, which the DPOR
            // rules validate against.
            if out.run.failure.is_none() {
                store_solo(&mut knowledge, &out.run, &out.sel_of);
                store_solo_first(&mut knowledge, perm[0], &out.run, &out.sel_of);
            }
            if failed {
                stats.interleaving_count = 0;
                let schedule = Schedule::serial(perm.clone());
                return LifsOutput {
                    failing: Some(self.finish(schedule, out.run, out.sel_of, &knowledge)),
                    stats,
                    tree,
                };
            }
        }

        // Probe runs for hardware-IRQ handlers: a serial execution with the
        // handler injected at the end seeds the handler's memory footprint
        // (the user agent knows the handler's code from the disassembly
        // map, but conflict knowledge is dynamic). Each probe is expressed
        // as a serial schedule ending in the handler's selector — the
        // enforcer's fallback resolution injects the IRQ once the syscall
        // threads exit — so probes run through the executor like any batch.
        let irq_sels: Vec<ThreadSel> = self
            .program
            .irq_handlers
            .iter()
            .map(|&irq| ThreadSel::first(irq))
            .collect();
        let probe_jobs: Vec<ExecJob> = irq_sels
            .iter()
            .map(|&irq| {
                let mut probe_order = initial_sels.clone();
                probe_order.push(irq);
                self.job(Schedule::serial(probe_order))
            })
            .collect();
        let results = self.run_batch(&probe_jobs);
        for ((irq, job), res) in irq_sels.iter().zip(&probe_jobs).zip(results) {
            let Some(out) = res else {
                return LifsOutput {
                    failing: None,
                    stats,
                    tree,
                };
            };
            order += 1;
            stats.sim.add_retries(out.retries as usize);
            stats.note_exec(&out);
            if out.vm_faulted.is_some() {
                stats.faulted += 1;
                tree.nodes.push(SearchNode {
                    order,
                    interleavings: 0,
                    plan: vec![],
                    serial_order: vec![*irq],
                    outcome: NodeOutcome::Faulted,
                    steps: 0,
                });
                continue;
            }
            stats.schedules_executed += 1;
            stats.sim.add_run(out.run.steps, out.run.failure.is_some());
            knowledge.absorb(&out.run, &out.sel_of);
            if out.run.failure.is_none() {
                store_solo(&mut knowledge, &out.run, &out.sel_of);
            }
            let failed = self.is_target_failure(&out.run);
            tree.nodes.push(SearchNode {
                order,
                interleavings: 0,
                plan: vec![],
                serial_order: vec![*irq],
                outcome: if failed {
                    NodeOutcome::Failure
                } else {
                    NodeOutcome::NoFailure
                },
                steps: out.run.steps,
            });
            if failed {
                stats.interleaving_count = 0;
                // The c ≥ 1 phase never started: no prune log to flush.
                return LifsOutput {
                    failing: Some(self.finish(
                        job.schedule.clone(),
                        out.run,
                        out.sel_of,
                        &knowledge,
                    )),
                    stats,
                    tree,
                };
            }
        }

        // Interleaving counts 1..=max. Plans of length c are generated in
        // rounds: each round enumerates every not-yet-executed plan the
        // *current* knowledge base supports (depth-first, front to back),
        // executes the whole round as one batch, and folds the results in
        // canonical order. Knowledge grown by a round (race-steered paths
        // revealing new memory points) feeds the next round's generation;
        // a count is exhausted when a round generates nothing new.
        let mut prune_log = PruneLog::default();
        'counts: for c in 1..=self.config.max_interleavings {
            let mut plans_done: HashSet<PlanKey> = HashSet::new();
            loop {
                if self.config.cancel.is_cancelled() {
                    break 'counts;
                }
                let remaining = self
                    .config
                    .max_schedules
                    .saturating_sub(stats.schedules_executed);
                if remaining == 0 {
                    break 'counts;
                }
                let mut plans =
                    self.generate_plans(c as usize, &knowledge, &mut prune_log, &mut plans_done);
                if plans.is_empty() {
                    break; // This count is exhausted; move to c + 1.
                }
                let capped = plans.len() > remaining;
                plans.truncate(remaining);
                let jobs: Vec<ExecJob> = plans
                    .iter()
                    .map(|plan| self.job(plan_schedule(plan, &initial_sels)))
                    .collect();
                let results = self.run_until_failure(&jobs);
                let mut cancelled = false;
                for (plan, res) in plans.iter().zip(results) {
                    let Some(out) = res else {
                        cancelled = true;
                        break;
                    };
                    order += 1;
                    stats.sim.add_retries(out.retries as usize);
                    stats.note_exec(&out);
                    if out.vm_faulted.is_some() {
                        stats.faulted += 1;
                        tree.nodes.push(SearchNode {
                            order,
                            interleavings: c,
                            plan: describe(plan),
                            serial_order: vec![],
                            outcome: NodeOutcome::Faulted,
                            steps: 0,
                        });
                        continue;
                    }
                    stats.schedules_executed += 1;
                    stats.sim.add_run(out.run.steps, out.run.failure.is_some());
                    let fresh = knowledge.absorb(&out.run, &out.sel_of);
                    if !fresh {
                        stats.pruned_equivalent += 1;
                    }
                    let failed = self.is_target_failure(&out.run);
                    tree.nodes.push(SearchNode {
                        order,
                        interleavings: c,
                        plan: describe(plan),
                        serial_order: vec![],
                        outcome: if failed {
                            NodeOutcome::Failure
                        } else if fresh {
                            NodeOutcome::NoFailure
                        } else {
                            NodeOutcome::PrunedEquivalent
                        },
                        steps: out.run.steps,
                    });
                    if failed {
                        stats.interleaving_count = c;
                        prune_log.flush(&mut stats, &mut tree, &mut order);
                        let schedule = plan_schedule(plan, &initial_sels);
                        return LifsOutput {
                            failing: Some(self.finish(schedule, out.run, out.sel_of, &knowledge)),
                            stats,
                            tree,
                        };
                    }
                }
                if cancelled || capped {
                    break 'counts;
                }
            }
        }

        prune_log.flush(&mut stats, &mut tree, &mut order);
        LifsOutput {
            failing: None,
            stats,
            tree,
        }
    }

    /// Wraps a schedule as an executor job for this searcher's program.
    fn job(&self, schedule: Schedule) -> ExecJob {
        ExecJob {
            program: Arc::clone(&self.program),
            schedule,
            enforce: self.config.enforce,
        }
    }

    /// Submits a batch that stops at the first target failure.
    fn run_until_failure(&self, jobs: &[ExecJob]) -> Vec<Option<ExecOutput>> {
        self.exec.run_until(jobs, &self.config.cancel, |o| {
            self.is_target_failure(&o.run)
        })
    }

    /// Alias of [`Lifs::run_until_failure`] for the c = 0 phases, which
    /// share the same first-failure-wins semantics.
    fn run_batch(&self, jobs: &[ExecJob]) -> Vec<Option<ExecOutput>> {
        self.run_until_failure(jobs)
    }

    /// Enumerates every not-yet-executed length-`c` plan the knowledge base
    /// supports, in the canonical depth-first front-to-back order.
    fn generate_plans(
        &self,
        c: usize,
        knowledge: &Knowledge,
        prune_log: &mut PruneLog,
        plans_done: &mut HashSet<PlanKey>,
    ) -> Vec<Vec<Preemption>> {
        let mut out = Vec::new();
        let mut stack: Vec<Vec<Preemption>> = vec![vec![]];
        while let Some(prefix) = stack.pop() {
            if prefix.len() == c {
                let key: PlanKey = prefix
                    .iter()
                    .map(|p| {
                        (
                            p.victim.prog.0,
                            p.victim.occurrence,
                            p.at.index,
                            p.nth,
                            p.target.prog.0,
                            p.target.occurrence,
                        )
                    })
                    .collect();
                if plans_done.insert(key) {
                    out.push(prefix);
                }
                continue;
            }
            // Extend the prefix: enumerate next preemptions in reverse so
            // the stack pops them front-to-back.
            let exts = self.extensions(knowledge, c, &prefix, prune_log);
            for ext in exts.into_iter().rev() {
                let mut next = prefix.clone();
                next.push(ext);
                stack.push(next);
            }
        }
        out
    }

    /// Whether a run's failure matches the reported failure signature.
    fn is_target_failure(&self, run: &RunResult) -> bool {
        match (&run.failure, &self.config.target) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(f), Some(t)) => t.matches(f, &self.program),
        }
    }

    /// Candidate next preemptions given a plan prefix.
    ///
    /// Pruning happens here, at generation time, and every rule preserves
    /// the first failing schedule: a pruned candidate is always
    /// Mazurkiewicz-equivalent to a plan *earlier* in the canonical
    /// generation order (or to a count-0 serial run), so its failure — if
    /// any — is discovered at the equivalent plan's slot instead.
    ///
    /// At [`PruneLevel::Conflict`] and above: a point whose accesses
    /// conflict with no other thread cannot change any conflict order
    /// (grey nodes of Figure 5), and a preemption after a thread's final
    /// memory access is equivalent to a serial order ("skip (eqv.)"
    /// nodes).
    ///
    /// At [`PruneLevel::Dpor`], count-1 plans additionally pass the
    /// sleep-set and persistent-set rules ([`DporCtx`]), validated against
    /// the victim's exact solo prediction. Each pruned candidate is
    /// counted once per knowledge version, and un-noted again if newer
    /// knowledge makes it generative.
    fn extensions(
        &self,
        k: &Knowledge,
        c: usize,
        prefix: &[Preemption],
        pruned: &mut PruneLog,
    ) -> Vec<Preemption> {
        let mut out = Vec::new();
        let sels = k.sels.clone();
        let conflict = self.config.prune >= PruneLevel::Conflict;
        // The refined point filter (commutative adds) is depth-independent.
        let dpor_static = self.config.prune >= PruneLevel::Dpor;
        // The sleep-set / persistent-set rules predict a plan's
        // pre-preemption prefix from the victim's solo trace. That
        // prediction is exact only for the first preemption of a count-1
        // plan (the victim runs uninterrupted from the initial state);
        // deeper plans race-steer the victim, so the rules stay off there.
        let dpor = dpor_static && c == 1;
        let initial = initial_sels(&self.program);
        for &victim in &sels {
            let Some(points) = k.mem_points.get(&victim) else {
                continue;
            };
            // Same-victim preemptions must move forward.
            let min_pos = prefix
                .iter()
                .filter(|p| p.victim == victim)
                .filter_map(|p| points.iter().position(|&(a, n)| a == p.at && n == p.nth))
                .map(|i| i + 1)
                .max()
                .unwrap_or(0);
            let last = points.last().copied();
            let mut dpor_ctx = if dpor {
                DporCtx::new(&self.program, k, victim, &initial)
            } else {
                None
            };
            // Solo positions of conflict-surviving points already emitted
            // for this victim — the sleep-set rule's backtrack anchors.
            let mut surv: Vec<usize> = Vec::new();
            for &(at, nth) in points.iter().skip(min_pos) {
                let point_key = PruneKey {
                    victim,
                    at,
                    nth,
                    target: None,
                };
                if conflict {
                    if !k.conflicts_somewhere(victim, at, nth) {
                        pruned.note(point_key, k.version, NodeOutcome::PrunedNonConflicting);
                        continue;
                    }
                    if last == Some((at, nth)) {
                        pruned.note(point_key, k.version, NodeOutcome::PrunedEquivalent);
                        continue;
                    }
                }
                // The refined filter is as static and depth-independent as
                // the footprint test above — it merely sees through
                // commutative add/add meetings — so it applies at every
                // plan depth, not just count 1.
                if dpor_static && !k.conflicts_somewhere_refined(victim, at, nth) {
                    pruned.note(point_key, k.version, NodeOutcome::PrunedNonConflicting);
                    continue;
                }
                pruned.unnote(&point_key);
                let solo_pos = dpor_ctx
                    .as_ref()
                    .and_then(|ctx| ctx.pos.get(&(at, nth)).copied());
                for &target in &sels {
                    if target == victim {
                        continue;
                    }
                    let pair_key = PruneKey {
                        victim,
                        at,
                        nth,
                        target: Some(target),
                    };
                    if dpor {
                        if let (Some(ctx), Some(p)) = (dpor_ctx.as_mut(), solo_pos) {
                            if let Some(reason) = ctx.prune(p, &surv, target) {
                                pruned.note(pair_key, k.version, reason);
                                continue;
                            }
                        }
                        // Generative this round: drop any sleep/persistent
                        // note recorded under older knowledge. Deeper
                        // rounds reuse the same pair as an extension of a
                        // prefix and must NOT unnote — the standalone
                        // count-1 plan stays pruned regardless.
                        pruned.unnote(&pair_key);
                    }
                    out.push(Preemption {
                        victim,
                        at,
                        nth,
                        target,
                    });
                }
                if let Some(p) = solo_pos {
                    // Generation order is the points-list order; only
                    // already-emitted points may anchor a sleep-set prune,
                    // so positions are recorded after the point is done.
                    let idx = surv.partition_point(|&q| q < p);
                    surv.insert(idx, p);
                }
            }
        }
        out
    }

    /// Assembles the [`FailingRun`], including pending-second races.
    fn finish(
        &self,
        schedule: Schedule,
        run: RunResult,
        sel_of: HashMap<ThreadId, ThreadSel>,
        knowledge: &Knowledge,
    ) -> FailingRun {
        let mut races = races_in_trace(&run.trace);
        // Critical-section order pairs join the test set; their flips are
        // planned over whole critical sections (§3.4 liveness).
        for r in crate::race::cs_order_races(&run.trace) {
            if !races.iter().any(|q| q.key() == r.key()) {
                races.push(r);
            }
        }
        let executed: HashSet<(ThreadSel, InstrAddr)> =
            run.trace.iter().map(|r| (sel_of[&r.tid], r.at)).collect();
        // Pending races: known racing pairs whose executed end is the
        // failing thread's *last memory access* while the other end is
        // still ahead of a suspended thread — Figure 6's `B17 ⇒ A12`,
        // where the read feeding the `BUG_ON` races with the `list_add`
        // the suspended thread A never reached. This is the one shape
        // whose counterfactual order is crisply determined: the failure
        // interrupted exactly that ordering, so flipping it (delaying the
        // failing thread until the pending instruction executes) is
        // meaningful. Pending ends deeper in any thread's unexecuted
        // future are not part of the failure-causing sequence.
        let failure_adjacent: Vec<InstrAddr> = run
            .failure
            .as_ref()
            .map(|f| {
                let mut adj = Vec::new();
                // The failing access itself, when it touches memory...
                if run
                    .trace
                    .iter()
                    .any(|r| r.at == f.at && !r.accesses.is_empty())
                {
                    adj.push(f.at);
                }
                // ...and the failing thread's last memory access before it.
                if let Some(prev) = run
                    .trace
                    .iter()
                    .rev()
                    .find(|r| r.tid == f.tid && r.at != f.at && !r.accesses.is_empty())
                {
                    adj.push(prev.at);
                }
                adj
            })
            .unwrap_or_default();
        for &(i, j) in &knowledge.known_pairs {
            for (done, pending) in [(i, j), (j, i)] {
                if !failure_adjacent.contains(&done) {
                    continue;
                }
                let done_evt = run.trace.iter().rev().find_map(|r| {
                    if r.at == done && r.accesses.iter().any(|_| true) {
                        Some(r.clone())
                    } else {
                        None
                    }
                });
                let Some(done_rec) = done_evt else { continue };
                // The pending end's thread.
                let Some(pend_final) = run.threads.iter().find(|f| f.sel.prog == pending.prog)
                else {
                    continue;
                };
                if executed.contains(&(pend_final.sel, pending)) {
                    continue; // Both executed: covered by races_in_trace.
                }
                // The instruction must still be ahead of the thread.
                let ahead = match pend_final.next {
                    Some(next) => next.prog == pending.prog && pending.index >= next.index,
                    None => false,
                };
                if !ahead {
                    continue;
                }
                let first_access = done_rec.accesses.first().copied();
                let Some(acc) = first_access else { continue };
                let pend_tid = run
                    .trace
                    .iter()
                    .map(|r| r.tid)
                    .find(|t| sel_of[t] == pend_final.sel)
                    .unwrap_or(done_rec.tid);
                let race = ObservedRace {
                    first: crate::race::AccessEvt {
                        seq: done_rec.seq,
                        tid: done_rec.tid,
                        at: done_rec.at,
                        addr: acc.addr,
                        is_write: acc.kind.is_write(),
                        locks: done_rec.locks_held.clone(),
                    },
                    second: RaceEnd::Pending {
                        tid: pend_tid,
                        at: pending,
                    },
                };
                if !races.iter().any(|r| r.key() == race.key()) {
                    races.push(race);
                }
            }
        }
        races.sort_by_key(ObservedRace::backward_key);
        FailingRun {
            program: Arc::clone(&self.program),
            schedule,
            trace: run.trace.clone(),
            failure: run.failure.clone().expect("failing run has a failure"),
            races,
            solo: knowledge.solo.clone(),
            finals: run.threads.clone(),
            sel_of_tid: sel_of,
        }
    }
}

/// Initial thread selectors of a program, honouring duplicate programs.
#[must_use]
pub fn initial_sels(program: &Program) -> Vec<ThreadSel> {
    let mut counts: HashMap<ksim::ThreadProgId, u32> = HashMap::new();
    program
        .initial
        .iter()
        .map(|&p| {
            let occ = *counts.entry(p).and_modify(|c| *c += 1).or_insert(0);
            ThreadSel {
                prog: p,
                occurrence: occ,
            }
        })
        .collect()
}

fn permutations(sels: &[ThreadSel]) -> Vec<Vec<ThreadSel>> {
    if sels.len() <= 1 {
        return vec![sels.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &first) in sels.iter().enumerate() {
        let mut rest: Vec<ThreadSel> = sels.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            let mut perm = vec![first];
            perm.append(&mut tail);
            out.push(perm);
        }
    }
    out
}

fn describe(plan: &[Preemption]) -> Vec<PreemptionDesc> {
    plan.iter()
        .map(|p| PreemptionDesc {
            victim: p.victim,
            at: p.at,
            nth: p.nth,
            target: p.target,
        })
        .collect()
}

fn plan_schedule(plan: &[Preemption], initial: &[ThreadSel]) -> Schedule {
    let points = plan
        .iter()
        .map(|p| SchedPoint {
            thread: p.victim,
            at: p.at,
            nth: p.nth,
            when: Anchor::After,
            switch_to: p.target,
        })
        .collect();
    // Fallback: the final preemption's target first, then the serial order.
    let mut fallback = Vec::new();
    if let Some(last) = plan.last() {
        fallback.push(last.target);
    }
    for &s in initial {
        if !fallback.contains(&s) {
            fallback.push(s);
        }
    }
    Schedule {
        start: plan
            .first()
            .map(|p| p.victim)
            .or_else(|| initial.first().copied()),
        points,
        fallback,
        segments: Vec::new(),
    }
}

/// Stores the first-running thread's projection of a serial run: `first`
/// executed uninterrupted from the initial state, so its projection
/// predicts a count-1 plan prefix exactly. The projection is identical in
/// every permutation that starts with `first`, so the first observation
/// sticks.
fn store_solo_first(
    k: &mut Knowledge,
    first: ThreadSel,
    run: &RunResult,
    sel_of: &HashMap<ThreadId, ThreadSel>,
) {
    if k.solo_first.contains_key(&first) {
        return;
    }
    let steps: Vec<StepRecord> = run
        .trace
        .iter()
        .filter(|rec| sel_of[&rec.tid] == first)
        .cloned()
        .collect();
    k.solo_first.insert(first, steps);
}

/// Stores per-thread projections of a serial run as solo traces.
fn store_solo(k: &mut Knowledge, run: &RunResult, sel_of: &HashMap<ThreadId, ThreadSel>) {
    let mut per: HashMap<ThreadSel, Vec<StepRecord>> = HashMap::new();
    for rec in &run.trace {
        per.entry(sel_of[&rec.tid]).or_default().push(rec.clone());
    }
    for (sel, steps) in per {
        let entry = k.solo.entry(sel).or_default();
        if steps.len() > entry.len() {
            *entry = steps;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforce;
    use ksim::builder::ProgramBuilder;
    use ksim::{Engine, FailureKind};

    /// The paper's Figure 1: `ptr_valid`/`ptr` multi-variable race, NULL
    /// deref only under `A1 ⇒ B1 ⇒ B2 ⇒ A2`.
    fn fig1_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "clearer");
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(ksim::builder::cond_reg("r0", ksim::CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    #[test]
    fn lifs_reproduces_fig1_with_one_interleaving() {
        let out = Lifs::new(fig1_program(), LifsConfig::default()).search();
        let failing = out.failing.expect("must reproduce");
        assert_eq!(failing.failure.kind, FailureKind::NullDeref);
        assert_eq!(out.stats.interleaving_count, 1);
        assert!(out.stats.schedules_executed >= 3); // 2 serial + ≥1 preempted
        assert!(!failing.races.is_empty());
    }

    #[test]
    fn serial_runs_come_first_and_do_not_fail() {
        let out = Lifs::new(fig1_program(), LifsConfig::default()).search();
        let serial: Vec<_> = out
            .tree
            .nodes
            .iter()
            .filter(|n| n.interleavings == 0)
            .collect();
        assert_eq!(serial.len(), 2);
        assert!(serial.iter().all(|n| n.outcome == NodeOutcome::NoFailure));
    }

    #[test]
    fn failing_sequence_replays_deterministically() {
        let out = Lifs::new(fig1_program(), LifsConfig::default()).search();
        let failing = out.failing.expect("must reproduce");
        // Re-enforce the failing schedule: same failure, same trace length.
        let mut e = Engine::new(fig1_program());
        let r = enforce::run(&mut e, &failing.schedule, &EnforceConfig::default());
        let f = r.failure.expect("replay fails too");
        assert_eq!(f.kind, failing.failure.kind);
        assert_eq!(f.at, failing.failure.at);
        assert_eq!(r.trace.len(), failing.trace.len());
    }

    #[test]
    fn por_prunes_candidates() {
        let mut cfg = LifsConfig {
            prune: PruneLevel::Conflict,
            ..LifsConfig::default()
        };
        let with_por = Lifs::new(fig1_program(), cfg.clone()).search();
        cfg.prune = PruneLevel::Off;
        let without = Lifs::new(fig1_program(), cfg).search();
        assert!(with_por.failing.is_some());
        assert!(without.failing.is_some());
        assert!(
            with_por.stats.schedules_executed <= without.stats.schedules_executed,
            "POR must not increase executed schedules"
        );
    }

    #[test]
    fn prune_levels_preserve_the_failing_schedule() {
        let mut found = Vec::new();
        for level in [PruneLevel::Off, PruneLevel::Conflict, PruneLevel::Dpor] {
            let cfg = LifsConfig {
                prune: level,
                ..LifsConfig::default()
            };
            let out = Lifs::new(fig1_program(), cfg).search();
            let failing = out.failing.expect("every level must reproduce");
            found.push((failing.schedule, failing.trace.len()));
        }
        assert_eq!(found[0], found[1], "off vs conflict diverged");
        assert_eq!(found[1], found[2], "conflict vs dpor diverged");
    }

    #[test]
    fn prune_level_parses_and_displays() {
        use std::str::FromStr;
        for (s, l) in [
            ("off", PruneLevel::Off),
            ("conflict", PruneLevel::Conflict),
            ("dpor", PruneLevel::Dpor),
        ] {
            assert_eq!(PruneLevel::from_str(s).unwrap(), l);
            assert_eq!(l.to_string(), s);
        }
        assert!(PruneLevel::from_str("banana").is_err());
        assert_eq!(PruneLevel::default(), PruneLevel::Conflict);
        assert!(PruneLevel::Dpor > PruneLevel::Conflict);
        assert!(PruneLevel::Conflict > PruneLevel::Off);
    }

    /// A failure requiring a kernel background thread (Figure 4-(c) shape):
    /// the syscall frees an object that the kworker it queued still uses —
    /// only when the kworker's store is delayed past the free.
    fn kworker_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("kworker-uaf");
        let slot = p.global("slot", 0);
        let w = {
            let mut w = p.kworker_thread("kworker");
            w.n("K1").load_global("r1", slot);
            w.n("K2").store_ind("r1", 0, 7u64); // write through slot
            w.ret();
            w.id()
        };
        {
            let mut a = p.syscall_thread("A", "ioctl");
            a.n("A1").alloc("r0", 8);
            a.n("A2").store_global_from(slot, "r0");
            a.n("A3").queue_work(w, None);
            a.n("A4").free("r0");
            a.ret();
        }
        Arc::new(p.build().unwrap())
    }

    #[test]
    fn lifs_handles_background_threads() {
        // Serial order A then kworker: K2 writes a freed object → actually
        // fails serially? A frees before K runs, so serial *does* fail —
        // LIFS reproduces at interleaving count 0.
        let out = Lifs::new(kworker_program(), LifsConfig::default()).search();
        let failing = out.failing.expect("must reproduce");
        assert_eq!(failing.failure.kind, FailureKind::UseAfterFree);
    }

    /// Background-thread failure that needs one preemption: the kworker
    /// crashes only when it runs inside the syscall's NULL window
    /// (`A2` nulls `ptr`, `A3` restores it).
    fn kworker_window_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("kworker-window");
        let obj = p.static_obj("obj", 8);
        let ptr = p.global_ptr("ptr", obj);
        let w = {
            let mut w = p.kworker_thread("kworker");
            w.n("K1").load_global("r1", ptr);
            w.n("K2").load_ind("r2", "r1", 0);
            w.ret();
            w.id()
        };
        {
            let mut a = p.syscall_thread("A", "ioctl");
            a.n("A1").load_global("r3", ptr); // remember the valid pointer
            a.n("A2").queue_work(w, None);
            a.n("A3").store_global(ptr, 0u64); // NULL window opens
            a.n("A4").store_global_from(ptr, "r3"); // window closes
            a.ret();
        }
        Arc::new(p.build().unwrap())
    }

    #[test]
    fn lifs_finds_window_race_with_kworker() {
        let out = Lifs::new(kworker_window_program(), LifsConfig::default()).search();
        let failing = out.failing.expect("must reproduce");
        assert!(out.stats.interleaving_count >= 1);
        assert_eq!(failing.failure.kind, FailureKind::NullDeref);
    }

    #[test]
    fn pending_races_are_reported() {
        // In fig1's failing run, A2's load of ptr races with B2's store;
        // additionally instructions past the failure must be representable.
        let out = Lifs::new(fig1_program(), LifsConfig::default()).search();
        let failing = out.failing.expect("must reproduce");
        // All races sorted backward.
        let keys: Vec<usize> = failing
            .races
            .iter()
            .map(ObservedRace::backward_key)
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn faulted_schedules_are_counted_but_never_absorbed() {
        // Every attempt of every job faults: the search observes nothing,
        // reproduces nothing, and records every loss.
        let exec = Arc::new(crate::exec::Executor::with_config(
            crate::exec::ExecutorConfig {
                vms: 1,
                fault: Some(crate::exec::FaultInjection {
                    seed: 1,
                    rate_permille: 1000,
                    max_retries: 1,
                    quarantine_after: 0,
                }),
                ..crate::exec::ExecutorConfig::default()
            },
        ));
        let out = Lifs::with_executor(fig1_program(), LifsConfig::default(), exec).search();
        assert!(out.failing.is_none());
        assert_eq!(out.stats.schedules_executed, 0);
        assert_eq!(out.stats.faulted, 2, "both serial permutations lost");
        assert_eq!(out.tree.faulted(), 2);
        // Each faulted job burned its full retry budget.
        assert_eq!(out.stats.sim.retries, 2);
    }

    #[test]
    fn search_gives_up_within_bounds_when_no_failure_exists() {
        let mut p = ProgramBuilder::new("benign");
        let x = p.global("x", 0);
        {
            let mut a = p.syscall_thread("A", "w");
            a.fetch_add_global(x, 1u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "w");
            b.fetch_add_global(x, 1u64);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let out = Lifs::new(prog, LifsConfig::default()).search();
        assert!(out.failing.is_none());
        assert!(out.stats.schedules_executed > 0);
    }
}

#[cfg(test)]
mod target_tests {
    use super::*;
    use ksim::builder::{
        cond_reg,
        ProgramBuilder, //
    };
    use ksim::{
        CmpOp,
        FailureKind, //
    };

    /// A program that can fail two different ways; the failure target makes
    /// LIFS skip the wrong one and keep searching for the reported one.
    fn two_failure_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("two-failures");
        let flag = p.global("flag", 0);
        let obj = p.static_obj("obj", 8);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "x");
            a.func("path_a");
            a.n("A1").store_global(flag, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0); // NULL deref when B nulled ptr
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "y");
            b.func("path_b");
            let out = b.new_label();
            b.n("B1").load_global("r0", flag);
            b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
            // Either failure is reachable depending on the interleaving:
            // B2 nulls the pointer (→ A crashes), or B asserts on the flag.
            b.n("B2").store_global(ptr, 0u64);
            b.n("B3").load_global("r1", flag);
            b.bug_on_msg(cond_reg("r1", CmpOp::Eq, 1), "flag still set");
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    #[test]
    fn search_without_target_stops_at_first_failure() {
        let out = Lifs::new(two_failure_program(), LifsConfig::default()).search();
        let run = out.failing.expect("some failure");
        // Whichever failure comes first in the search ends it.
        assert!(matches!(
            run.failure.kind,
            FailureKind::AssertionViolation | FailureKind::NullDeref
        ));
    }

    #[test]
    fn search_with_target_skips_other_failures() {
        for (kind, func) in [
            (FailureKind::NullDeref, "path_a"),
            (FailureKind::AssertionViolation, "path_b"),
        ] {
            let cfg = LifsConfig {
                target: Some(FailureTarget::in_func(kind, func)),
                ..LifsConfig::default()
            };
            let out = Lifs::new(two_failure_program(), cfg).search();
            let run = out
                .failing
                .unwrap_or_else(|| panic!("{kind:?} must reproduce"));
            assert_eq!(run.failure.kind, kind);
        }
    }

    #[test]
    fn target_func_mismatch_rejects() {
        let prog = two_failure_program();
        let t = FailureTarget::in_func(FailureKind::NullDeref, "wrong_func");
        let cfg = LifsConfig {
            target: Some(t),
            max_interleavings: 2,
            ..LifsConfig::default()
        };
        let out = Lifs::new(prog, cfg).search();
        assert!(out.failing.is_none());
    }

    fn prune_key(nth: u32) -> PruneKey {
        PruneKey {
            victim: ThreadSel::first(ksim::ThreadProgId(0)),
            at: ksim::InstrAddr {
                prog: ksim::ThreadProgId(0),
                index: 0,
            },
            nth,
            target: None,
        }
    }

    /// A flushed log counts each key once even when generation re-notes it
    /// every round at the same knowledge version.
    #[test]
    fn prune_log_dedups_same_version_renotes() {
        let mut log = PruneLog::default();
        for _ in 0..5 {
            log.note(prune_key(0), 1, NodeOutcome::PrunedNonConflicting);
        }
        let mut stats = LifsStats::default();
        let mut tree = SearchTree::default();
        let mut order = 0;
        log.flush(&mut stats, &mut tree, &mut order);
        assert_eq!(stats.pruned_nonconflicting, 1);
        assert_eq!(tree.nodes.len(), 1);
    }

    /// A re-note at a newer knowledge version updates the recorded reason
    /// in place — one tree node, counted under the latest reason only.
    #[test]
    fn prune_log_newer_version_updates_reason_in_place() {
        let mut log = PruneLog::default();
        log.note(prune_key(0), 1, NodeOutcome::PrunedNonConflicting);
        log.note(prune_key(0), 2, NodeOutcome::PrunedSleepSet);
        let mut stats = LifsStats::default();
        let mut tree = SearchTree::default();
        let mut order = 0;
        log.flush(&mut stats, &mut tree, &mut order);
        assert_eq!(stats.pruned_nonconflicting, 0);
        assert_eq!(stats.pruned_sleep_set, 1);
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.nodes[0].outcome, NodeOutcome::PrunedSleepSet);
    }

    /// An unnoted key (the candidate became generative under newer
    /// knowledge) leaves no trace: not counted, no tree node — the
    /// executed schedule accounts for it instead. Other keys still flush,
    /// and flushing resets the log for the next round.
    #[test]
    fn prune_log_unnote_drops_the_pending_entry() {
        let mut log = PruneLog::default();
        log.note(prune_key(0), 1, NodeOutcome::PrunedNonConflicting);
        log.note(prune_key(1), 1, NodeOutcome::PrunedPersistent);
        log.unnote(&prune_key(0));
        let mut stats = LifsStats::default();
        let mut tree = SearchTree::default();
        let mut order = 0;
        log.flush(&mut stats, &mut tree, &mut order);
        assert_eq!(stats.pruned_nonconflicting, 0);
        assert_eq!(stats.pruned_persistent, 1);
        assert_eq!(tree.nodes.len(), 1);
        // The log is reusable after a flush: an unnoted key can be noted
        // again at a later version without being deduplicated away.
        log.note(prune_key(0), 3, NodeOutcome::PrunedSleepSet);
        log.flush(&mut stats, &mut tree, &mut order);
        assert_eq!(stats.pruned_sleep_set, 1);
        assert_eq!(tree.nodes.len(), 2);
    }

    /// Three threads shaped so both DPOR rules have something to prune:
    /// preempting A at `A2` toward B commutes with the already-emitted
    /// preemption at `A1` toward B (the step between them touches only
    /// `y`, which B never accesses) — the sleep-set rule's shape — while
    /// B's tail after `B1` is private, so preempting B at `B1` reproduces
    /// a serial order — the persistent-set rule's shape.
    fn sleepy_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("sleepy");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let w = p.global("w", 0);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.n("A1").store_global(x, 1u64);
            a.n("A2").store_global(y, 1u64);
            a.n("A3").store_global(x, 2u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "reader_x");
            b.n("B1").load_global("r0", x);
            b.n("B2").store_global(w, 1u64);
            b.ret();
        }
        {
            let mut c = p.syscall_thread("C", "reader_y");
            c.n("C1").load_global("r0", y);
            c.ret();
        }
        Arc::new(p.build().unwrap())
    }

    /// The sleep-set and persistent-set rules fire at `dpor` and only at
    /// `dpor`, and strictly reduce the executed-schedule count without
    /// changing the (non-)failure outcome.
    #[test]
    fn dpor_sleep_and_persistent_rules_fire() {
        let run = |prune| {
            Lifs::new(
                sleepy_program(),
                LifsConfig {
                    prune,
                    ..LifsConfig::default()
                },
            )
            .search()
        };
        let conflict = run(PruneLevel::Conflict);
        let dpor = run(PruneLevel::Dpor);
        assert_eq!(conflict.stats.pruned_sleep_set, 0);
        assert_eq!(conflict.stats.pruned_persistent, 0);
        assert!(
            dpor.stats.pruned_sleep_set + dpor.stats.pruned_persistent > 0,
            "dpor rules never fired: {:?}",
            dpor.stats
        );
        assert!(dpor.stats.schedules_executed < conflict.stats.schedules_executed);
        assert_eq!(conflict.failing.is_none(), dpor.failing.is_none());
    }

    /// Sleep-set state survives `SnapshotForest` prefix restores: with the
    /// memo table and forest enabled, a `dpor` search is bit-identical at
    /// 1, 2, and 8 workers — same schedule count, same per-rule prune
    /// counters, same search-tree outcomes — even though batch fan-out
    /// executes victims' prefixes from restored snapshots in parallel.
    #[test]
    fn dpor_pruning_is_identical_across_forest_worker_counts() {
        let digest = |vms: usize| {
            let exec = Arc::new(crate::exec::Executor::with_config(
                crate::exec::ExecutorConfig {
                    vms,
                    os_threads: Some(vms),
                    memo: true,
                    ..crate::exec::ExecutorConfig::default()
                },
            ));
            let out = Lifs::with_executor(
                sleepy_program(),
                LifsConfig {
                    prune: PruneLevel::Dpor,
                    ..LifsConfig::default()
                },
                exec,
            )
            .search();
            let outcomes: Vec<NodeOutcome> =
                out.tree.nodes.iter().map(|n| n.outcome.clone()).collect();
            (
                out.stats.schedules_executed,
                out.stats.pruned_nonconflicting,
                out.stats.pruned_equivalent,
                out.stats.pruned_sleep_set,
                out.stats.pruned_persistent,
                out.failing.map(|r| r.schedule),
                outcomes,
            )
        };
        let serial = digest(1);
        assert!(
            serial.3 + serial.4 > 0,
            "dpor rules never fired under the forest executor"
        );
        for vms in [2usize, 8] {
            assert_eq!(serial, digest(vms), "diverged at {vms} workers");
        }
    }
}
