//! Data-race detection over execution traces.
//!
//! The paper adopts the Linux kernel memory model's definitions (§2):
//! *conflicting accesses* touch the same location with at least one store;
//! a *data race* is a pair of conflicting accesses from different threads
//! executed concurrently. Concurrency is judged with vector clocks over the
//! happens-before order induced by program order, background-thread spawns
//! (`queue_work` / `call_rcu`), and lock release→acquire edges.
//!
//! A race observed in a trace carries its *interleaving order* (`X ⇒ Y`,
//! first ⇒ second); Causality Analysis flips exactly that order. Races whose
//! second access never executed — the thread was killed by the failure
//! before reaching it, like `A12` in the paper's Figure 6 — are represented
//! with a [`RaceEnd::Pending`] second end, ordered after the executed first
//! end.

use ksim::{
    events::LockEvent,
    Addr,
    InstrAddr,
    StepRecord,
    ThreadId, //
};
use std::collections::HashMap;

/// A vector clock, indexed by `ThreadId.0`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(pub Vec<u32>);

impl VClock {
    fn ensure(&mut self, n: usize) {
        if self.0.len() < n {
            self.0.resize(n, 0);
        }
    }

    fn tick(&mut self, tid: ThreadId) {
        self.ensure(tid.0 as usize + 1);
        self.0[tid.0 as usize] += 1;
    }

    fn join(&mut self, other: &VClock) {
        self.ensure(other.0.len());
        for (i, &v) in other.0.iter().enumerate() {
            self.0[i] = self.0[i].max(v);
        }
    }

    /// Whether `self` happens-before-or-equals `other` (componentwise ≤).
    #[must_use]
    pub fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }

    /// Whether the two clocks are concurrent (neither ordered).
    #[must_use]
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

/// One memory access extracted from a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessEvt {
    /// Trace sequence number of the executing step.
    pub seq: usize,
    /// Executing thread.
    pub tid: ThreadId,
    /// Static instruction address.
    pub at: InstrAddr,
    /// Accessed address.
    pub addr: Addr,
    /// Whether the access writes.
    pub is_write: bool,
    /// Locks held during the access.
    pub locks: Vec<ksim::LockId>,
}

/// One end of an observed data race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaceEnd {
    /// The access executed in the trace.
    Executed(AccessEvt),
    /// The access never executed — its thread was killed (or left suspended)
    /// by the failure before reaching the instruction. The interleaving
    /// order is still determined: the executed end came first.
    Pending {
        /// The thread that would have executed the access.
        tid: ThreadId,
        /// The instruction that would have performed it.
        at: InstrAddr,
    },
}

impl RaceEnd {
    /// The static instruction of this end.
    #[must_use]
    pub fn at(&self) -> InstrAddr {
        match self {
            RaceEnd::Executed(a) => a.at,
            RaceEnd::Pending { at, .. } => *at,
        }
    }

    /// The thread of this end.
    #[must_use]
    pub fn tid(&self) -> ThreadId {
        match self {
            RaceEnd::Executed(a) => a.tid,
            RaceEnd::Pending { tid, .. } => *tid,
        }
    }

    /// The trace sequence number, when executed.
    #[must_use]
    pub fn seq(&self) -> Option<usize> {
        match self {
            RaceEnd::Executed(a) => Some(a.seq),
            RaceEnd::Pending { .. } => None,
        }
    }
}

/// An observed data race with its interleaving order: `first ⇒ second`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservedRace {
    /// The earlier access.
    pub first: AccessEvt,
    /// The later (possibly pending) access.
    pub second: RaceEnd,
}

impl ObservedRace {
    /// The static identity of the race: ordered instruction pair.
    #[must_use]
    pub fn key(&self) -> (InstrAddr, InstrAddr) {
        (self.first.at, self.second.at())
    }

    /// The static identity ignoring order (for "same race, either order").
    #[must_use]
    pub fn unordered_key(&self) -> (InstrAddr, InstrAddr) {
        let (a, b) = self.key();
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Sort key for backward testing (§3.4): the position of the *last*
    /// involved instruction. Pending ends sort last of all.
    #[must_use]
    pub fn backward_key(&self) -> usize {
        match self.second.seq() {
            Some(s) => s,
            None => usize::MAX - self.first.seq,
        }
    }
}

/// Extracts all memory accesses from a trace.
#[must_use]
pub fn accesses(trace: &[StepRecord]) -> Vec<AccessEvt> {
    let mut out = Vec::new();
    for rec in trace {
        for acc in &rec.accesses {
            out.push(AccessEvt {
                seq: rec.seq,
                tid: rec.tid,
                at: rec.at,
                addr: acc.addr,
                is_write: acc.kind.is_write(),
                locks: rec.locks_held.clone(),
            });
        }
    }
    out
}

/// Computes one vector clock per trace step, over program order, spawn
/// edges, and lock release→acquire edges.
#[must_use]
pub fn step_clocks(trace: &[StepRecord]) -> Vec<VClock> {
    let mut thread_clocks: HashMap<ThreadId, VClock> = HashMap::new();
    let mut lock_clocks: HashMap<ksim::LockId, VClock> = HashMap::new();
    let mut out = Vec::with_capacity(trace.len());
    for rec in trace {
        let clock = thread_clocks.entry(rec.tid).or_default();
        if let Some(LockEvent::Acquired(l)) = rec.lock_event {
            if let Some(lc) = lock_clocks.get(&l) {
                clock.join(&lc.clone());
            }
        }
        clock.tick(rec.tid);
        let snapshot = clock.clone();
        if let Some(LockEvent::Released(l)) = rec.lock_event {
            lock_clocks.insert(l, snapshot.clone());
        }
        if let Some(child) = rec.spawned {
            let mut child_clock = snapshot.clone();
            child_clock.tick(child);
            thread_clocks.insert(child, child_clock);
        }
        out.push(snapshot);
    }
    out
}

/// Detects all data races observed in a trace, deduplicated by ordered
/// instruction pair (the first occurrence wins).
///
/// Two accesses race when they touch the same address from different
/// threads, at least one writes, and their step clocks are concurrent.
#[must_use]
pub fn races_in_trace(trace: &[StepRecord]) -> Vec<ObservedRace> {
    let evts = accesses(trace);
    let clocks = step_clocks(trace);
    // Group accesses by address to avoid the full quadratic sweep.
    let mut by_addr: HashMap<Addr, Vec<usize>> = HashMap::new();
    for (i, e) in evts.iter().enumerate() {
        by_addr.entry(e.addr).or_default().push(i);
    }
    let mut seen: HashMap<(InstrAddr, InstrAddr), ()> = HashMap::new();
    let mut out = Vec::new();
    for idxs in by_addr.values() {
        // Fast paths: thread-private locations and read-only locations
        // cannot race — this keeps bulk private traffic (noise work loops)
        // out of the quadratic pair sweep.
        let first_tid = evts[idxs[0]].tid;
        if idxs.iter().all(|&i| evts[i].tid == first_tid) || idxs.iter().all(|&i| !evts[i].is_write)
        {
            continue;
        }
        for (pos, &i) in idxs.iter().enumerate() {
            for &j in &idxs[pos + 1..] {
                let (a, b) = (&evts[i], &evts[j]);
                if a.tid == b.tid || !(a.is_write || b.is_write) {
                    continue;
                }
                if !clocks[a.seq].concurrent(&clocks[b.seq]) {
                    continue;
                }
                let (first, second) = if a.seq <= b.seq { (a, b) } else { (b, a) };
                let key = (first.at, second.at);
                if seen.insert(key, ()).is_none() {
                    out.push(ObservedRace {
                        first: first.clone(),
                        second: RaceEnd::Executed(second.clone()),
                    });
                }
            }
        }
    }
    out.sort_by_key(ObservedRace::backward_key);
    out
}

/// Conflicting access pairs whose order is fixed *only by a common lock* —
/// the critical-section order pairs of §3.4: "the execution order of
/// critical sections may contribute to the failure", so Causality Analysis
/// tests them too, flipping whole critical sections as units. They are not
/// data races under the kernel memory model (the lock orders them), which
/// is why [`races_in_trace`] excludes them and this function exists
/// separately.
#[must_use]
pub fn cs_order_races(trace: &[StepRecord]) -> Vec<ObservedRace> {
    let evts = accesses(trace);
    let clocks = step_clocks(trace);
    let mut by_addr: HashMap<Addr, Vec<usize>> = HashMap::new();
    for (i, e) in evts.iter().enumerate() {
        by_addr.entry(e.addr).or_default().push(i);
    }
    let mut seen: HashMap<(InstrAddr, InstrAddr), ()> = HashMap::new();
    let mut out = Vec::new();
    for idxs in by_addr.values() {
        let first_tid = evts[idxs[0]].tid;
        if idxs.iter().all(|&i| evts[i].tid == first_tid) || idxs.iter().all(|&i| !evts[i].is_write)
        {
            continue;
        }
        for (pos, &i) in idxs.iter().enumerate() {
            for &j in &idxs[pos + 1..] {
                let (a, b) = (&evts[i], &evts[j]);
                if a.tid == b.tid || !(a.is_write || b.is_write) {
                    continue;
                }
                // Ordered, not concurrent — and both inside critical
                // sections of a common lock.
                if clocks[a.seq].concurrent(&clocks[b.seq]) {
                    continue;
                }
                let common_lock = a.locks.iter().any(|l| b.locks.contains(l));
                if !common_lock {
                    continue;
                }
                let (first, second) = if a.seq <= b.seq { (a, b) } else { (b, a) };
                let key = (first.at, second.at);
                if seen.insert(key, ()).is_none() {
                    out.push(ObservedRace {
                        first: first.clone(),
                        second: RaceEnd::Executed(second.clone()),
                    });
                }
            }
        }
    }
    out.sort_by_key(ObservedRace::backward_key);
    out
}

/// Whether race `outer` *surrounds* race `inner` (paper Figure 7): the
/// outer's first access precedes the inner's first in the same thread, and
/// the inner's second access precedes the outer's second in the other
/// thread. Flipping the outer while preserving the inner's order is then
/// impossible.
#[must_use]
pub fn surrounds(outer: &ObservedRace, inner: &ObservedRace) -> bool {
    // Both ends must pair up by thread.
    if outer.first.tid != inner.first.tid || outer.second.tid() != inner.second.tid() {
        return false;
    }
    if outer.first.tid == outer.second.tid() {
        return false;
    }
    let (Some(outer_second), Some(inner_second)) = (outer.second.seq(), inner.second.seq()) else {
        return false;
    };
    outer.first.seq < inner.first.seq && inner_second < outer_second
}

/// The critical-section span (sequence range, inclusive) enclosing the step
/// at `seq` in its thread, or `None` when no lock was held.
///
/// The span runs from the `Lock` acquisition of the outermost lock held at
/// `seq` to its `Unlock` (or the thread's last step when never released) —
/// the unit Causality Analysis flips to preserve liveness (§3.4).
#[must_use]
pub fn critical_section_span(trace: &[StepRecord], seq: usize) -> Option<(usize, usize)> {
    let rec = trace.get(seq)?;
    let outer = *rec.locks_held.first()?;
    let tid = rec.tid;
    // Scan backward for the acquisition of `outer` by this thread.
    let mut start = seq;
    for r in trace[..=seq].iter().rev() {
        if r.tid != tid {
            continue;
        }
        start = r.seq;
        if r.lock_event == Some(LockEvent::Acquired(outer)) {
            break;
        }
    }
    // Scan forward for the release.
    let mut end = seq;
    for r in &trace[seq..] {
        if r.tid != tid {
            continue;
        }
        end = r.seq;
        if r.lock_event == Some(LockEvent::Released(outer)) {
            break;
        }
    }
    Some((start, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::{
        builder::ProgramBuilder,
        Engine,
        ThreadId, //
    };
    use std::sync::Arc;

    /// Interleaved stores/loads on one global: a data race.
    #[test]
    fn concurrent_conflicting_accesses_race() {
        let mut p = ProgramBuilder::new("race");
        let x = p.global("x", 0);
        {
            let mut a = p.syscall_thread("A", "w");
            a.store_global(x, 1u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "r");
            b.load_global("r0", x);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        let races = races_in_trace(e.trace());
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].first.tid, ThreadId(0));
        assert_eq!(races[0].second.tid(), ThreadId(1));
    }

    /// Two reads never race.
    #[test]
    fn read_read_is_not_a_race() {
        let mut p = ProgramBuilder::new("rr");
        let x = p.global("x", 0);
        {
            let mut a = p.syscall_thread("A", "r");
            a.load_global("r0", x);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "r");
            b.load_global("r0", x);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        assert!(races_in_trace(e.trace()).is_empty());
    }

    /// Lock-ordered accesses are not concurrent.
    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut p = ProgramBuilder::new("locked");
        let x = p.global("x", 0);
        let l = p.lock("l");
        {
            let mut a = p.syscall_thread("A", "w");
            a.lock(l);
            a.store_global(x, 1u64);
            a.unlock(l);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "w");
            b.lock(l);
            b.store_global(x, 2u64);
            b.unlock(l);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        assert!(races_in_trace(e.trace()).is_empty());
    }

    /// Spawn edges order the spawner's earlier accesses before the worker's.
    #[test]
    fn spawned_worker_is_ordered_after_spawn() {
        let mut p = ProgramBuilder::new("spawn");
        let x = p.global("x", 0);
        let w = {
            let mut w = p.kworker_thread("kw");
            w.store_global(x, 2u64);
            w.ret();
            w.id()
        };
        {
            let mut a = p.syscall_thread("A", "q");
            a.store_global(x, 1u64); // Before the spawn: ordered, no race.
            a.queue_work(w, None);
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        assert!(races_in_trace(e.trace()).is_empty());
    }

    /// Accesses after the spawn in the spawner race with the worker.
    #[test]
    fn spawner_access_after_spawn_races_with_worker() {
        let mut p = ProgramBuilder::new("spawn2");
        let x = p.global("x", 0);
        let w = {
            let mut w = p.kworker_thread("kw");
            w.store_global(x, 2u64);
            w.ret();
            w.id()
        };
        {
            let mut a = p.syscall_thread("A", "q");
            a.queue_work(w, None);
            a.store_global(x, 1u64); // After the spawn: concurrent with worker.
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        let races = races_in_trace(e.trace());
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn duplicate_instruction_pairs_dedupe() {
        let mut p = ProgramBuilder::new("dup");
        let x = p.global("x", 0);
        {
            let mut a = p.syscall_thread("A", "w");
            a.fetch_add_global(x, 1u64);
            a.fetch_add_global(x, 1u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "w");
            b.fetch_add_global(x, 1u64);
            b.fetch_add_global(x, 1u64);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        let races = races_in_trace(e.trace());
        // 2 instructions × 2 instructions = 4 distinct ordered pairs.
        assert_eq!(races.len(), 4);
    }

    #[test]
    fn surrounds_detects_nesting() {
        use ksim::ThreadProgId;
        let mk_access = |seq, tid, prog, index| AccessEvt {
            seq,
            tid: ThreadId(tid),
            at: InstrAddr {
                prog: ThreadProgId(prog),
                index,
            },
            addr: Addr(0x1000_0000),
            is_write: true,
            locks: vec![],
        };
        // Execution: A1(0) A2(1) B1(2) B2(3); outer = A1⇒B2, inner = A2⇒B1.
        let outer = ObservedRace {
            first: mk_access(0, 0, 0, 0),
            second: RaceEnd::Executed(mk_access(3, 1, 1, 1)),
        };
        let inner = ObservedRace {
            first: mk_access(1, 0, 0, 1),
            second: RaceEnd::Executed(mk_access(2, 1, 1, 0)),
        };
        assert!(surrounds(&outer, &inner));
        assert!(!surrounds(&inner, &outer));
        assert!(!surrounds(&outer, &outer));
    }

    #[test]
    fn critical_section_span_covers_lock_to_unlock() {
        let mut p = ProgramBuilder::new("cs");
        let x = p.global("x", 0);
        let l = p.lock("l");
        {
            let mut a = p.syscall_thread("A", "cs");
            a.lock(l); // seq 0
            a.store_global(x, 1u64); // seq 1
            a.store_global(x, 2u64); // seq 2
            a.unlock(l); // seq 3
            a.ret(); // seq 4
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        assert_eq!(critical_section_span(e.trace(), 1), Some((0, 3)));
        assert_eq!(critical_section_span(e.trace(), 2), Some((0, 3)));
        // The Unlock itself is inside the span.
        assert_eq!(critical_section_span(e.trace(), 3), Some((0, 3)));
        // Outside any lock.
        assert_eq!(critical_section_span(e.trace(), 4), None);
    }

    #[test]
    fn backward_key_orders_pending_last() {
        use ksim::ThreadProgId;
        let acc = |seq| AccessEvt {
            seq,
            tid: ThreadId(0),
            at: InstrAddr {
                prog: ThreadProgId(0),
                index: seq,
            },
            addr: Addr(0x1000_0000),
            is_write: true,
            locks: vec![],
        };
        let executed = ObservedRace {
            first: acc(0),
            second: RaceEnd::Executed(AccessEvt {
                tid: ThreadId(1),
                ..acc(5)
            }),
        };
        let pending = ObservedRace {
            first: acc(1),
            second: RaceEnd::Pending {
                tid: ThreadId(1),
                at: InstrAddr {
                    prog: ThreadProgId(1),
                    index: 9,
                },
            },
        };
        assert!(pending.backward_key() > executed.backward_key());
    }

    #[test]
    fn vclock_le_and_concurrent() {
        let a = VClock(vec![1, 0]);
        let b = VClock(vec![1, 2]);
        let c = VClock(vec![0, 1]);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(a.concurrent(&c));
        assert!(!a.concurrent(&b));
    }
}

#[cfg(test)]
mod cs_order_tests {
    use super::*;
    use ksim::builder::ProgramBuilder;
    use ksim::Engine;
    use std::sync::Arc;

    /// Same-lock-ordered conflicting accesses are CS-order pairs, not data
    /// races.
    #[test]
    fn lock_ordered_conflicts_are_cs_pairs() {
        let mut p = ProgramBuilder::new("cs-pairs");
        let x = p.global("x", 0);
        let l = p.lock("l");
        for name in ["A", "B"] {
            let mut t = p.syscall_thread(name, "s");
            t.lock(l);
            t.store_global(x, 1u64);
            t.unlock(l);
            t.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        assert!(races_in_trace(e.trace()).is_empty());
        let cs = cs_order_races(e.trace());
        assert_eq!(cs.len(), 1);
        assert!(!cs[0].first.locks.is_empty());
    }

    /// Accesses ordered by *different* locks do not form CS-order pairs
    /// (they are plain data races — the locks do not order them).
    #[test]
    fn different_locks_are_not_cs_pairs() {
        let mut p = ProgramBuilder::new("diff-locks");
        let x = p.global("x", 0);
        let l1 = p.lock("l1");
        let l2 = p.lock("l2");
        {
            let mut a = p.syscall_thread("A", "s");
            a.lock(l1);
            a.store_global(x, 1u64);
            a.unlock(l1);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "s");
            b.lock(l2);
            b.store_global(x, 2u64);
            b.unlock(l2);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        // Concurrent (different locks) → a data race, not a CS pair.
        assert_eq!(races_in_trace(e.trace()).len(), 1);
        assert!(cs_order_races(e.trace()).is_empty());
    }
}
