//! Data-race detection over execution traces.
//!
//! The paper adopts the Linux kernel memory model's definitions (§2):
//! *conflicting accesses* touch the same location with at least one store;
//! a *data race* is a pair of conflicting accesses from different threads
//! executed concurrently. Concurrency is judged with vector clocks over the
//! happens-before order induced by program order, background-thread spawns
//! (`queue_work` / `call_rcu`), and lock release→acquire edges.
//!
//! A race observed in a trace carries its *interleaving order* (`X ⇒ Y`,
//! first ⇒ second); Causality Analysis flips exactly that order. Races whose
//! second access never executed — the thread was killed by the failure
//! before reaching it, like `A12` in the paper's Figure 6 — are represented
//! with a [`RaceEnd::Pending`] second end, ordered after the executed first
//! end.

use crate::schedule::ThreadSel;
use ksim::{
    events::LockEvent,
    AccessKind,
    Addr,
    InstrAddr,
    StepRecord,
    ThreadId,
    Trace, //
};
use std::collections::{
    BTreeSet,
    HashMap,
    HashSet, //
};

/// A vector clock, indexed by `ThreadId.0`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(pub Vec<u32>);

impl VClock {
    fn ensure(&mut self, n: usize) {
        if self.0.len() < n {
            self.0.resize(n, 0);
        }
    }

    fn tick(&mut self, tid: ThreadId) {
        self.ensure(tid.0 as usize + 1);
        self.0[tid.0 as usize] += 1;
    }

    fn join(&mut self, other: &VClock) {
        self.ensure(other.0.len());
        for (i, &v) in other.0.iter().enumerate() {
            self.0[i] = self.0[i].max(v);
        }
    }

    /// Whether `self` happens-before-or-equals `other` (componentwise ≤).
    #[must_use]
    pub fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }

    /// Whether the two clocks are concurrent (neither ordered).
    #[must_use]
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

/// One memory access extracted from a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessEvt {
    /// Trace sequence number of the executing step.
    pub seq: usize,
    /// Executing thread.
    pub tid: ThreadId,
    /// Static instruction address.
    pub at: InstrAddr,
    /// Accessed address.
    pub addr: Addr,
    /// Whether the access writes.
    pub is_write: bool,
    /// Locks held during the access.
    pub locks: Vec<ksim::LockId>,
}

/// One end of an observed data race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaceEnd {
    /// The access executed in the trace.
    Executed(AccessEvt),
    /// The access never executed — its thread was killed (or left suspended)
    /// by the failure before reaching the instruction. The interleaving
    /// order is still determined: the executed end came first.
    Pending {
        /// The thread that would have executed the access.
        tid: ThreadId,
        /// The instruction that would have performed it.
        at: InstrAddr,
    },
}

impl RaceEnd {
    /// The static instruction of this end.
    #[must_use]
    pub fn at(&self) -> InstrAddr {
        match self {
            RaceEnd::Executed(a) => a.at,
            RaceEnd::Pending { at, .. } => *at,
        }
    }

    /// The thread of this end.
    #[must_use]
    pub fn tid(&self) -> ThreadId {
        match self {
            RaceEnd::Executed(a) => a.tid,
            RaceEnd::Pending { tid, .. } => *tid,
        }
    }

    /// The trace sequence number, when executed.
    #[must_use]
    pub fn seq(&self) -> Option<usize> {
        match self {
            RaceEnd::Executed(a) => Some(a.seq),
            RaceEnd::Pending { .. } => None,
        }
    }
}

/// An observed data race with its interleaving order: `first ⇒ second`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservedRace {
    /// The earlier access.
    pub first: AccessEvt,
    /// The later (possibly pending) access.
    pub second: RaceEnd,
}

impl ObservedRace {
    /// The static identity of the race: ordered instruction pair.
    #[must_use]
    pub fn key(&self) -> (InstrAddr, InstrAddr) {
        (self.first.at, self.second.at())
    }

    /// The static identity ignoring order (for "same race, either order").
    #[must_use]
    pub fn unordered_key(&self) -> (InstrAddr, InstrAddr) {
        let (a, b) = self.key();
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Sort key for backward testing (§3.4): the position of the *last*
    /// involved instruction. Pending ends sort last of all.
    #[must_use]
    pub fn backward_key(&self) -> usize {
        match self.second.seq() {
            Some(s) => s,
            None => usize::MAX - self.first.seq,
        }
    }
}

/// Extracts all memory accesses from a trace.
#[must_use]
pub fn accesses(trace: &Trace) -> Vec<AccessEvt> {
    let mut out = Vec::new();
    for rec in trace {
        for acc in &rec.accesses {
            out.push(AccessEvt {
                seq: rec.seq,
                tid: rec.tid,
                at: rec.at,
                addr: acc.addr,
                is_write: acc.kind.is_write(),
                locks: rec.locks_held.clone(),
            });
        }
    }
    out
}

/// Computes one vector clock per trace step, over program order, spawn
/// edges, and lock release→acquire edges.
#[must_use]
pub fn step_clocks(trace: &Trace) -> Vec<VClock> {
    let mut thread_clocks: HashMap<ThreadId, VClock> = HashMap::new();
    let mut lock_clocks: HashMap<ksim::LockId, VClock> = HashMap::new();
    let mut out = Vec::with_capacity(trace.len());
    for rec in trace {
        let clock = thread_clocks.entry(rec.tid).or_default();
        if let Some(LockEvent::Acquired(l)) = rec.lock_event {
            if let Some(lc) = lock_clocks.get(&l) {
                clock.join(&lc.clone());
            }
        }
        clock.tick(rec.tid);
        let snapshot = clock.clone();
        if let Some(LockEvent::Released(l)) = rec.lock_event {
            lock_clocks.insert(l, snapshot.clone());
        }
        if let Some(child) = rec.spawned {
            let mut child_clock = snapshot.clone();
            child_clock.tick(child);
            thread_clocks.insert(child, child_clock);
        }
        out.push(snapshot);
    }
    out
}

/// Detects all data races observed in a trace, deduplicated by ordered
/// instruction pair (the first occurrence wins).
///
/// Two accesses race when they touch the same address from different
/// threads, at least one writes, and their step clocks are concurrent.
#[must_use]
pub fn races_in_trace(trace: &Trace) -> Vec<ObservedRace> {
    let evts = accesses(trace);
    let clocks = step_clocks(trace);
    // Group accesses by address to avoid the full quadratic sweep.
    let mut by_addr: HashMap<Addr, Vec<usize>> = HashMap::new();
    for (i, e) in evts.iter().enumerate() {
        by_addr.entry(e.addr).or_default().push(i);
    }
    let mut seen: HashMap<(InstrAddr, InstrAddr), ()> = HashMap::new();
    let mut out = Vec::new();
    for idxs in by_addr.values() {
        // Fast paths: thread-private locations and read-only locations
        // cannot race — this keeps bulk private traffic (noise work loops)
        // out of the quadratic pair sweep.
        let first_tid = evts[idxs[0]].tid;
        if idxs.iter().all(|&i| evts[i].tid == first_tid) || idxs.iter().all(|&i| !evts[i].is_write)
        {
            continue;
        }
        for (pos, &i) in idxs.iter().enumerate() {
            for &j in &idxs[pos + 1..] {
                let (a, b) = (&evts[i], &evts[j]);
                if a.tid == b.tid || !(a.is_write || b.is_write) {
                    continue;
                }
                if !clocks[a.seq].concurrent(&clocks[b.seq]) {
                    continue;
                }
                let (first, second) = if a.seq <= b.seq { (a, b) } else { (b, a) };
                let key = (first.at, second.at);
                if seen.insert(key, ()).is_none() {
                    out.push(ObservedRace {
                        first: first.clone(),
                        second: RaceEnd::Executed(second.clone()),
                    });
                }
            }
        }
    }
    out.sort_by_key(ObservedRace::backward_key);
    out
}

/// Conflicting access pairs whose order is fixed *only by a common lock* —
/// the critical-section order pairs of §3.4: "the execution order of
/// critical sections may contribute to the failure", so Causality Analysis
/// tests them too, flipping whole critical sections as units. They are not
/// data races under the kernel memory model (the lock orders them), which
/// is why [`races_in_trace`] excludes them and this function exists
/// separately.
#[must_use]
pub fn cs_order_races(trace: &Trace) -> Vec<ObservedRace> {
    let evts = accesses(trace);
    let clocks = step_clocks(trace);
    let mut by_addr: HashMap<Addr, Vec<usize>> = HashMap::new();
    for (i, e) in evts.iter().enumerate() {
        by_addr.entry(e.addr).or_default().push(i);
    }
    let mut seen: HashMap<(InstrAddr, InstrAddr), ()> = HashMap::new();
    let mut out = Vec::new();
    for idxs in by_addr.values() {
        let first_tid = evts[idxs[0]].tid;
        if idxs.iter().all(|&i| evts[i].tid == first_tid) || idxs.iter().all(|&i| !evts[i].is_write)
        {
            continue;
        }
        for (pos, &i) in idxs.iter().enumerate() {
            for &j in &idxs[pos + 1..] {
                let (a, b) = (&evts[i], &evts[j]);
                if a.tid == b.tid || !(a.is_write || b.is_write) {
                    continue;
                }
                // Ordered, not concurrent — and both inside critical
                // sections of a common lock.
                if clocks[a.seq].concurrent(&clocks[b.seq]) {
                    continue;
                }
                let common_lock = a.locks.iter().any(|l| b.locks.contains(l));
                if !common_lock {
                    continue;
                }
                let (first, second) = if a.seq <= b.seq { (a, b) } else { (b, a) };
                let key = (first.at, second.at);
                if seen.insert(key, ()).is_none() {
                    out.push(ObservedRace {
                        first: first.clone(),
                        second: RaceEnd::Executed(second.clone()),
                    });
                }
            }
        }
    }
    out.sort_by_key(ObservedRace::backward_key);
    out
}

/// Whether race `outer` *surrounds* race `inner` (paper Figure 7): the
/// outer's first access precedes the inner's first in the same thread, and
/// the inner's second access precedes the outer's second in the other
/// thread. Flipping the outer while preserving the inner's order is then
/// impossible.
#[must_use]
pub fn surrounds(outer: &ObservedRace, inner: &ObservedRace) -> bool {
    // Both ends must pair up by thread.
    if outer.first.tid != inner.first.tid || outer.second.tid() != inner.second.tid() {
        return false;
    }
    if outer.first.tid == outer.second.tid() {
        return false;
    }
    let (Some(outer_second), Some(inner_second)) = (outer.second.seq(), inner.second.seq()) else {
        return false;
    };
    outer.first.seq < inner.first.seq && inner_second < outer_second
}

/// The critical-section span (sequence range, inclusive) enclosing the step
/// at `seq` in its thread, or `None` when no lock was held.
///
/// The span runs from the `Lock` acquisition of the outermost lock held at
/// `seq` to its `Unlock` (or the thread's last step when never released) —
/// the unit Causality Analysis flips to preserve liveness (§3.4).
#[must_use]
pub fn critical_section_span(trace: &Trace, seq: usize) -> Option<(usize, usize)> {
    let rec = trace.get(seq)?;
    let outer = *rec.locks_held.first()?;
    let tid = rec.tid;
    // Scan backward for the acquisition of `outer` by this thread.
    let mut start = seq;
    for r in (0..=seq).rev().map(|i| &trace[i]) {
        if r.tid != tid {
            continue;
        }
        start = r.seq;
        if r.lock_event == Some(LockEvent::Acquired(outer)) {
            break;
        }
    }
    // Scan forward for the release.
    let mut end = seq;
    for r in trace.iter().skip(seq) {
        if r.tid != tid {
            continue;
        }
        end = r.seq;
        if r.lock_event == Some(LockEvent::Released(outer)) {
            break;
        }
    }
    Some((start, end))
}

/// How an observed access participates in conflicts.
///
/// Plain reads and writes follow the usual write-aware rule. The third
/// class, [`AccessClass::Add`], is the observability refinement: an
/// unobserved `fetch_add` (no destination register, so the loaded value is
/// discarded) is a commutative update — two of them against the same
/// address produce the same memory, the same registers, and the same
/// per-thread projections in either order, so they never conflict with
/// each other. They still conflict with any read (which observes the
/// running sum) and any write (which clobbers it). This is what lets DPOR
/// see through the kernel's benign statistics-counter traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessClass {
    /// Pure load.
    Read,
    /// Store, or a read-modify-write whose result is observed.
    Write,
    /// Commutative unobserved read-modify-write (`fetch_add` into nowhere).
    Add,
}

/// Static, write-aware conflict index over the per-thread address sets
/// observed in executed traces.
///
/// Built once per program from the serial (count-0) runs of the same
/// vector-clock analysis that feeds race detection, then consulted by LIFS
/// plan generation: two accesses *may conflict* only when they touch a
/// common address, at least one writes, and they are not both commutative
/// unobserved adds ([`AccessClass`]). Pairs that can never conflict under
/// that test are filtered before plan generation — the DPOR sleep-set and
/// persistent-set rules both reduce to queries against this index.
///
/// The index is deliberately conservative in one direction only: an
/// address never observed for a thread is assumed absent (the thread's
/// traces are complete projections of its serial runs), while a thread
/// with *no* recorded trace reports conflicts everywhere.
#[derive(Clone, Debug, Default)]
pub struct ConflictIndex {
    reads: HashMap<ThreadSel, BTreeSet<Addr>>,
    writes: HashMap<ThreadSel, BTreeSet<Addr>>,
    adds: HashMap<ThreadSel, BTreeSet<Addr>>,
    /// Instructions that are commutative unobserved adds, determined
    /// statically from the program text.
    commutative: HashSet<InstrAddr>,
}

impl ConflictIndex {
    /// An index primed with the program's commutative instructions
    /// (`fetch_add` with no destination register).
    #[must_use]
    pub fn for_program(program: &ksim::Program) -> ConflictIndex {
        let mut commutative = HashSet::new();
        for (p, prog) in program.progs.iter().enumerate() {
            for (index, instr) in prog.instrs.iter().enumerate() {
                if matches!(instr, ksim::instr::Instr::FetchAdd { dst: None, .. }) {
                    commutative.insert(InstrAddr {
                        prog: ksim::ThreadProgId(p as u16),
                        index,
                    });
                }
            }
        }
        ConflictIndex {
            commutative,
            ..ConflictIndex::default()
        }
    }

    /// Classifies one observed access by kind and originating instruction.
    #[must_use]
    pub fn classify(&self, at: InstrAddr, kind: AccessKind) -> AccessClass {
        match kind {
            AccessKind::Read => AccessClass::Read,
            AccessKind::Rmw if self.commutative.contains(&at) => AccessClass::Add,
            // An observed RMW both reads and writes; Write is the class
            // that conflicts with every other touch, which covers it.
            AccessKind::Write | AccessKind::Rmw => AccessClass::Write,
        }
    }

    /// Folds one thread's executed steps into the index.
    pub fn add_steps<'a>(
        &mut self,
        sel: ThreadSel,
        steps: impl IntoIterator<Item = &'a StepRecord>,
    ) {
        for rec in steps {
            for acc in &rec.accesses {
                let class = self.classify(rec.at, acc.kind);
                let set = match class {
                    AccessClass::Read => self.reads.entry(sel).or_default(),
                    AccessClass::Write => self.writes.entry(sel).or_default(),
                    AccessClass::Add => self.adds.entry(sel).or_default(),
                };
                set.insert(acc.addr);
            }
        }
        // A thread with an empty trace still counts as known.
        self.reads.entry(sel).or_default();
    }

    /// Whether the index has any observation for `sel`.
    #[must_use]
    pub fn knows(&self, sel: ThreadSel) -> bool {
        self.reads.contains_key(&sel)
            || self.writes.contains_key(&sel)
            || self.adds.contains_key(&sel)
    }

    fn has(&self, map: &HashMap<ThreadSel, BTreeSet<Addr>>, sel: ThreadSel, addr: Addr) -> bool {
        map.get(&sel).is_some_and(|s| s.contains(&addr))
    }

    /// Whether an access (by the instruction at `at`, of `kind`) may
    /// conflict with *any* access of `sel`: a write conflicts with any
    /// touch of the address, a read with any update, and a commutative add
    /// with anything except another commutative add. Unknown threads
    /// conservatively conflict.
    #[must_use]
    pub fn may_conflict(
        &self,
        addr: Addr,
        kind: AccessKind,
        at: InstrAddr,
        sel: ThreadSel,
    ) -> bool {
        if !self.knows(sel) {
            return true;
        }
        let read = self.has(&self.reads, sel, addr);
        let written = self.has(&self.writes, sel, addr);
        let added = self.has(&self.adds, sel, addr);
        match self.classify(at, kind) {
            AccessClass::Read => written || added,
            AccessClass::Write => read || written || added,
            AccessClass::Add => read || written,
        }
    }

    /// Whether an access may conflict with any thread in `sels` other than
    /// `own` (the accessing thread never conflicts with itself).
    #[must_use]
    pub fn may_conflict_any(
        &self,
        addr: Addr,
        kind: AccessKind,
        at: InstrAddr,
        own: ThreadSel,
        sels: &[ThreadSel],
    ) -> bool {
        sels.iter()
            .filter(|&&s| s != own)
            .any(|&s| self.may_conflict(addr, kind, at, s))
    }

    /// Whether an address touched by the instruction at `at` (executed by
    /// `own`) may conflict with any *other* thread the index knows. Used as
    /// the refined point-level filter: a commutative add conflicts only
    /// with genuine reads or writes of the address; any other access
    /// conservatively conflicts with every touch (the footprint test).
    #[must_use]
    pub fn addr_conflicts_any_other(&self, addr: Addr, at: InstrAddr, own: ThreadSel) -> bool {
        let commutative = self.commutative.contains(&at);
        let sels: HashSet<&ThreadSel> = self
            .reads
            .keys()
            .chain(self.writes.keys())
            .chain(self.adds.keys())
            .collect();
        sels.into_iter().filter(|&&s| s != own).any(|&s| {
            let touched = self.has(&self.reads, s, addr)
                || self.has(&self.writes, s, addr)
                || self.has(&self.adds, s, addr);
            if commutative {
                self.has(&self.reads, s, addr) || self.has(&self.writes, s, addr)
            } else {
                touched
            }
        })
    }

    /// Whether the two threads' footprints can conflict at all: some
    /// address is updated by one and touched by the other, commutative
    /// add/add pairs excepted. Unknown threads conservatively conflict.
    #[must_use]
    pub fn sels_may_conflict(&self, a: ThreadSel, b: ThreadSel) -> bool {
        if !self.knows(a) || !self.knows(b) {
            return true;
        }
        let one_way = |x: ThreadSel, y: ThreadSel| {
            let writes_hit = self.writes.get(&x).is_some_and(|w| {
                w.iter().any(|&addr| {
                    self.has(&self.writes, y, addr)
                        || self.has(&self.reads, y, addr)
                        || self.has(&self.adds, y, addr)
                })
            });
            let adds_hit = self.adds.get(&x).is_some_and(|w| {
                w.iter()
                    .any(|&addr| self.has(&self.writes, y, addr) || self.has(&self.reads, y, addr))
            });
            writes_hit || adds_hit
        };
        one_way(a, b) || one_way(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::{
        builder::ProgramBuilder,
        Engine,
        ThreadId, //
    };
    use std::sync::Arc;

    /// Interleaved stores/loads on one global: a data race.
    #[test]
    fn concurrent_conflicting_accesses_race() {
        let mut p = ProgramBuilder::new("race");
        let x = p.global("x", 0);
        {
            let mut a = p.syscall_thread("A", "w");
            a.store_global(x, 1u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "r");
            b.load_global("r0", x);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        let races = races_in_trace(e.trace());
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].first.tid, ThreadId(0));
        assert_eq!(races[0].second.tid(), ThreadId(1));
    }

    /// Two reads never race.
    #[test]
    fn read_read_is_not_a_race() {
        let mut p = ProgramBuilder::new("rr");
        let x = p.global("x", 0);
        {
            let mut a = p.syscall_thread("A", "r");
            a.load_global("r0", x);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "r");
            b.load_global("r0", x);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        assert!(races_in_trace(e.trace()).is_empty());
    }

    /// Lock-ordered accesses are not concurrent.
    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut p = ProgramBuilder::new("locked");
        let x = p.global("x", 0);
        let l = p.lock("l");
        {
            let mut a = p.syscall_thread("A", "w");
            a.lock(l);
            a.store_global(x, 1u64);
            a.unlock(l);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "w");
            b.lock(l);
            b.store_global(x, 2u64);
            b.unlock(l);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        assert!(races_in_trace(e.trace()).is_empty());
    }

    /// Spawn edges order the spawner's earlier accesses before the worker's.
    #[test]
    fn spawned_worker_is_ordered_after_spawn() {
        let mut p = ProgramBuilder::new("spawn");
        let x = p.global("x", 0);
        let w = {
            let mut w = p.kworker_thread("kw");
            w.store_global(x, 2u64);
            w.ret();
            w.id()
        };
        {
            let mut a = p.syscall_thread("A", "q");
            a.store_global(x, 1u64); // Before the spawn: ordered, no race.
            a.queue_work(w, None);
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        assert!(races_in_trace(e.trace()).is_empty());
    }

    /// Accesses after the spawn in the spawner race with the worker.
    #[test]
    fn spawner_access_after_spawn_races_with_worker() {
        let mut p = ProgramBuilder::new("spawn2");
        let x = p.global("x", 0);
        let w = {
            let mut w = p.kworker_thread("kw");
            w.store_global(x, 2u64);
            w.ret();
            w.id()
        };
        {
            let mut a = p.syscall_thread("A", "q");
            a.queue_work(w, None);
            a.store_global(x, 1u64); // After the spawn: concurrent with worker.
            a.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        let races = races_in_trace(e.trace());
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn duplicate_instruction_pairs_dedupe() {
        let mut p = ProgramBuilder::new("dup");
        let x = p.global("x", 0);
        {
            let mut a = p.syscall_thread("A", "w");
            a.fetch_add_global(x, 1u64);
            a.fetch_add_global(x, 1u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "w");
            b.fetch_add_global(x, 1u64);
            b.fetch_add_global(x, 1u64);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        let races = races_in_trace(e.trace());
        // 2 instructions × 2 instructions = 4 distinct ordered pairs.
        assert_eq!(races.len(), 4);
    }

    #[test]
    fn surrounds_detects_nesting() {
        use ksim::ThreadProgId;
        let mk_access = |seq, tid, prog, index| AccessEvt {
            seq,
            tid: ThreadId(tid),
            at: InstrAddr {
                prog: ThreadProgId(prog),
                index,
            },
            addr: Addr(0x1000_0000),
            is_write: true,
            locks: vec![],
        };
        // Execution: A1(0) A2(1) B1(2) B2(3); outer = A1⇒B2, inner = A2⇒B1.
        let outer = ObservedRace {
            first: mk_access(0, 0, 0, 0),
            second: RaceEnd::Executed(mk_access(3, 1, 1, 1)),
        };
        let inner = ObservedRace {
            first: mk_access(1, 0, 0, 1),
            second: RaceEnd::Executed(mk_access(2, 1, 1, 0)),
        };
        assert!(surrounds(&outer, &inner));
        assert!(!surrounds(&inner, &outer));
        assert!(!surrounds(&outer, &outer));
    }

    #[test]
    fn critical_section_span_covers_lock_to_unlock() {
        let mut p = ProgramBuilder::new("cs");
        let x = p.global("x", 0);
        let l = p.lock("l");
        {
            let mut a = p.syscall_thread("A", "cs");
            a.lock(l); // seq 0
            a.store_global(x, 1u64); // seq 1
            a.store_global(x, 2u64); // seq 2
            a.unlock(l); // seq 3
            a.ret(); // seq 4
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        assert_eq!(critical_section_span(e.trace(), 1), Some((0, 3)));
        assert_eq!(critical_section_span(e.trace(), 2), Some((0, 3)));
        // The Unlock itself is inside the span.
        assert_eq!(critical_section_span(e.trace(), 3), Some((0, 3)));
        // Outside any lock.
        assert_eq!(critical_section_span(e.trace(), 4), None);
    }

    #[test]
    fn backward_key_orders_pending_last() {
        use ksim::ThreadProgId;
        let acc = |seq| AccessEvt {
            seq,
            tid: ThreadId(0),
            at: InstrAddr {
                prog: ThreadProgId(0),
                index: seq,
            },
            addr: Addr(0x1000_0000),
            is_write: true,
            locks: vec![],
        };
        let executed = ObservedRace {
            first: acc(0),
            second: RaceEnd::Executed(AccessEvt {
                tid: ThreadId(1),
                ..acc(5)
            }),
        };
        let pending = ObservedRace {
            first: acc(1),
            second: RaceEnd::Pending {
                tid: ThreadId(1),
                at: InstrAddr {
                    prog: ThreadProgId(1),
                    index: 9,
                },
            },
        };
        assert!(pending.backward_key() > executed.backward_key());
    }

    #[test]
    fn vclock_le_and_concurrent() {
        let a = VClock(vec![1, 0]);
        let b = VClock(vec![1, 2]);
        let c = VClock(vec![0, 1]);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(a.concurrent(&c));
        assert!(!a.concurrent(&b));
    }
}

#[cfg(test)]
mod conflict_index_tests {
    use super::*;
    use ksim::builder::ProgramBuilder;
    use ksim::{Engine, MemAccess, ThreadProgId};
    use std::sync::Arc;

    fn sel(n: u16) -> ThreadSel {
        ThreadSel::first(ThreadProgId(n))
    }

    /// Builds an index from a two-thread program: A writes x and bumps a
    /// counter c, B reads x, writes y, and bumps c.
    fn built_index() -> (ConflictIndex, Arc<ksim::Program>, Addr, Addr, Addr) {
        let mut p = ProgramBuilder::new("ci");
        let x = p.global("x", 0);
        let y = p.global("y", 0);
        let c = p.global("c", 0);
        {
            let mut a = p.syscall_thread("A", "w");
            a.store_global(x, 1u64);
            a.fetch_add_global(c, 1u64);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "r");
            b.load_global("r0", x);
            b.store_global(y, 2u64);
            b.fetch_add_global(c, 1u64);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(Arc::clone(&prog));
        e.run_all_serial();
        let mut idx = ConflictIndex::for_program(&prog);
        let trace = e.trace().to_vec();
        for (i, s) in [sel(0), sel(1)].into_iter().enumerate() {
            idx.add_steps(s, trace.iter().filter(|r| r.tid == ThreadId(i as u32)));
        }
        let addr_of = |tid: u32, pred: fn(&MemAccess) -> bool| {
            trace
                .iter()
                .filter(|r| r.tid == ThreadId(tid))
                .flat_map(|r| r.accesses.iter())
                .find(|a| pred(a))
                .unwrap()
                .addr
        };
        let xa = addr_of(0, |a| a.kind == AccessKind::Write);
        let ya = addr_of(1, |a| a.kind == AccessKind::Write);
        let ca = addr_of(0, |a| a.kind == AccessKind::Rmw);
        (idx, prog, xa, ya, ca)
    }

    /// The instruction address of thread `prog`'s first access of `kind`.
    fn at_of(program: &ksim::Program, prog: u16, kind: AccessKind) -> InstrAddr {
        let index = program.progs[prog as usize]
            .instrs
            .iter()
            .position(|i| match kind {
                AccessKind::Read => matches!(i, ksim::Instr::Load { .. }),
                AccessKind::Write => matches!(i, ksim::Instr::Store { .. }),
                AccessKind::Rmw => matches!(i, ksim::Instr::FetchAdd { .. }),
            })
            .unwrap();
        InstrAddr {
            prog: ThreadProgId(prog),
            index,
        }
    }

    #[test]
    fn write_conflicts_with_read_and_write() {
        let (idx, prog, x, y, _) = built_index();
        let a_store = at_of(&prog, 0, AccessKind::Write);
        let b_load = at_of(&prog, 1, AccessKind::Read);
        // A write of x conflicts with B (B reads x).
        assert!(idx.may_conflict(x, AccessKind::Write, a_store, sel(1)));
        // A read of x does NOT conflict with B (B only reads x).
        assert!(!idx.may_conflict(x, AccessKind::Read, b_load, sel(1)));
        // A read of y conflicts with B (B writes y).
        assert!(idx.may_conflict(y, AccessKind::Read, b_load, sel(1)));
        // y is private to B as far as A goes.
        assert!(!idx.may_conflict(y, AccessKind::Write, a_store, sel(0)));
    }

    #[test]
    fn commutative_adds_do_not_conflict_with_each_other() {
        let (idx, prog, _, _, c) = built_index();
        let a_add = at_of(&prog, 0, AccessKind::Rmw);
        assert_eq!(idx.classify(a_add, AccessKind::Rmw), AccessClass::Add);
        // Both threads only fetch_add the counter → no conflict either way.
        assert!(!idx.may_conflict(c, AccessKind::Rmw, a_add, sel(1)));
        assert!(!idx.addr_conflicts_any_other(c, a_add, sel(0)));
        // A *write* of the counter would conflict with B's add...
        let a_store = at_of(&prog, 0, AccessKind::Write);
        assert!(idx.may_conflict(c, AccessKind::Write, a_store, sel(1)));
        // ...and an Rmw from a non-commutative instruction (the store's
        // address classifies it as Write) conflicts too.
        assert_eq!(idx.classify(a_store, AccessKind::Rmw), AccessClass::Write);
    }

    #[test]
    fn unknown_thread_conservatively_conflicts() {
        let (idx, prog, x, _, _) = built_index();
        let b_load = at_of(&prog, 1, AccessKind::Read);
        assert!(!idx.knows(sel(9)));
        assert!(idx.may_conflict(x, AccessKind::Read, b_load, sel(9)));
        assert!(idx.sels_may_conflict(sel(0), sel(9)));
    }

    #[test]
    fn sels_may_conflict_is_write_aware() {
        let (idx, _, _, _, _) = built_index();
        // A writes x, B reads x → they conflict (the shared counter's
        // add/add meeting alone would not).
        assert!(idx.sels_may_conflict(sel(0), sel(1)));
        assert!(idx.sels_may_conflict(sel(1), sel(0)));
    }

    #[test]
    fn may_conflict_any_skips_own_thread() {
        let (idx, prog, _, y, _) = built_index();
        let b_store = at_of(&prog, 1, AccessKind::Write);
        let sels = [sel(0), sel(1)];
        // B's write of y conflicts with nobody else.
        assert!(!idx.may_conflict_any(y, AccessKind::Write, b_store, sel(1), &sels));
        // But an unknown third thread would see it.
        let sels3 = [sel(0), sel(1), sel(9)];
        assert!(idx.may_conflict_any(y, AccessKind::Write, b_store, sel(1), &sels3));
    }
}

#[cfg(test)]
mod cs_order_tests {
    use super::*;
    use ksim::builder::ProgramBuilder;
    use ksim::Engine;
    use std::sync::Arc;

    /// Same-lock-ordered conflicting accesses are CS-order pairs, not data
    /// races.
    #[test]
    fn lock_ordered_conflicts_are_cs_pairs() {
        let mut p = ProgramBuilder::new("cs-pairs");
        let x = p.global("x", 0);
        let l = p.lock("l");
        for name in ["A", "B"] {
            let mut t = p.syscall_thread(name, "s");
            t.lock(l);
            t.store_global(x, 1u64);
            t.unlock(l);
            t.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        assert!(races_in_trace(e.trace()).is_empty());
        let cs = cs_order_races(e.trace());
        assert_eq!(cs.len(), 1);
        assert!(!cs[0].first.locks.is_empty());
    }

    /// Accesses ordered by *different* locks do not form CS-order pairs
    /// (they are plain data races — the locks do not order them).
    #[test]
    fn different_locks_are_not_cs_pairs() {
        let mut p = ProgramBuilder::new("diff-locks");
        let x = p.global("x", 0);
        let l1 = p.lock("l1");
        let l2 = p.lock("l2");
        {
            let mut a = p.syscall_thread("A", "s");
            a.lock(l1);
            a.store_global(x, 1u64);
            a.unlock(l1);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "s");
            b.lock(l2);
            b.store_global(x, 2u64);
            b.unlock(l2);
            b.ret();
        }
        let prog = Arc::new(p.build().unwrap());
        let mut e = Engine::new(prog);
        e.run_all_serial();
        // Concurrent (different locks) → a data race, not a CS pair.
        assert_eq!(races_in_trace(e.trace()).len(), 1);
        assert!(cs_order_races(e.trace()).is_empty());
    }
}
