//! Pluggable execution backends: the substrate contract under enforcement.
//!
//! AITIA's algorithms — LIFS reproduction, causality flips, the campaign
//! service — never care *what* executes the kernel scenario; they need
//! exactly the hypervisor contract of §4.3–§4.4: step one instruction of
//! one chosen thread, capture/restore checkpoints, query scheduling state,
//! and extract the failure and the observed memory accesses afterwards.
//! [`ExecBackend`] is that contract, extracted from the concrete
//! [`ksim::Engine`] usage in `enforce.rs` and `exec.rs` so a real microVM
//! (the feature-gated [`KvmBackend`]) can slot in underneath without any
//! layer above the executor noticing.
//!
//! Invariants a conforming backend must uphold (what
//! `tests/backend_conformance.rs` checks; see DESIGN.md §5 "backend
//! contract"):
//!
//! 1. **Determinism**: the same step sequence from the same state produces
//!    the same trace, failure, and thread states, every time.
//! 2. **Snapshot round-trip**: `restore(snapshot())` is an observational
//!    no-op; stepping after a restore behaves exactly like stepping from
//!    the original state.
//! 3. **Reboot resets everything**: after [`ExecBackend::reboot`] the
//!    backend is indistinguishable from a freshly booted one.
//! 4. **Observed-access stability**: the access set extracted from the
//!    trace is a pure function of the executed steps — snapshot/restore
//!    boundaries may not add, drop, or reorder accesses.
//! 5. **Snapshot affinity**: a [`BackendSnapshot`] may only be restored
//!    into the backend kind that captured it (the executor keys its shared
//!    caches by [`BackendKind`] so foreign handles never arrive).

use ksim::{
    AccessKind,
    Addr,
    Engine,
    EngineError,
    Failure,
    InstrAddr,
    LockId,
    Program,
    SnapshotMode,
    StepOutcome,
    Thread,
    ThreadId,
    ThreadProgId,
    Trace, //
};
use std::{
    any::Any,
    collections::BTreeSet,
    str::FromStr,
    sync::Arc, //
};

/// The default backend: the deterministic `ksim` engine itself. The trait
/// is implemented directly on [`ksim::Engine`], so `KsimBackend` is an
/// alias — existing `&mut Engine` call sites coerce to
/// `&mut dyn ExecBackend` unchanged.
pub type KsimBackend = Engine;

/// An opaque, backend-defined checkpoint handle.
///
/// The payload lives behind an [`Arc`], so cloning is a reference-count
/// bump — the snapshot-prefix caches shuffle many of these through LRU
/// order and must never pay a deep copy for bookkeeping. The pointer
/// identity of the inner `Arc` is stable across clones, which is what
/// preserves [`ksim::Engine::restore`]'s `Weak` last-restored fast path
/// through the trait boundary.
#[derive(Clone)]
pub struct BackendSnapshot(Arc<dyn Any + Send + Sync>);

impl BackendSnapshot {
    /// Wraps a backend's concrete snapshot payload.
    #[must_use]
    pub fn new<T: Any + Send + Sync>(inner: T) -> BackendSnapshot {
        BackendSnapshot(Arc::new(inner))
    }

    /// Borrows the concrete payload, when this handle was captured by a
    /// backend storing `T`.
    #[must_use]
    pub fn downcast_ref<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for BackendSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("BackendSnapshot")
            .field(&Arc::as_ptr(&self.0))
            .finish()
    }
}

/// The execution-substrate contract (see module docs for the invariants).
///
/// The method set mirrors exactly what enforcement and the executor need
/// from a hypervisor: external scheduling (`step`), checkpointing
/// (`snapshot`/`restore`/`reboot`), scheduling-state queries, and
/// post-run extraction (`failure`, `trace`, `observed_accesses`).
/// `ksim` *types* (threads, traces, failures) remain the lingua franca of
/// results — they are the simulator-agnostic observation vocabulary — but
/// no concrete engine, snapshot, or snapshot-mode type crosses this
/// boundary.
pub trait ExecBackend: Send {
    /// Which registered backend this is (keys the shared memo table and
    /// snapshot forest, upholding invariant 5).
    fn kind(&self) -> BackendKind;

    /// The program this backend was booted with.
    fn program(&self) -> &Arc<Program>;

    /// Discards all execution state and boots the program afresh.
    fn reboot(&mut self);

    /// Executes exactly one instruction of `tid`.
    ///
    /// # Errors
    ///
    /// Exactly the [`ksim::Engine::step`] contract: `Halted` when the
    /// machine has halted, `UnknownThread`/`NotRunnable` for invalid
    /// scheduling requests.
    fn step(&mut self, tid: ThreadId) -> Result<StepOutcome, EngineError>;

    /// Captures a restorable checkpoint as an opaque handle.
    fn snapshot(&self) -> BackendSnapshot;

    /// Restores a checkpoint previously captured by this backend kind from
    /// the same program.
    ///
    /// # Panics
    ///
    /// May panic when handed a foreign backend's handle — the executor
    /// keys shared caches by [`ExecBackend::kind`] so this cannot happen
    /// through the supported paths.
    fn restore(&mut self, snapshot: &BackendSnapshot);

    /// The failure that halted the machine, if one manifested.
    fn failure(&self) -> Option<&Failure>;

    /// Every step executed since boot (or the restored checkpoint).
    fn trace(&self) -> &Trace;

    /// All runtime threads, in spawn order.
    fn threads(&self) -> &[Thread];

    /// One thread by id.
    fn thread(&self, tid: ThreadId) -> Option<&Thread>;

    /// Ids of threads that can execute right now.
    fn runnable(&self) -> Vec<ThreadId>;

    /// Resolves the `occurrence`-th spawn of static thread `prog`.
    fn thread_by_prog(&self, prog: ThreadProgId, occurrence: u32) -> Option<ThreadId>;

    /// Whether every thread has exited normally.
    fn all_done(&self) -> bool;

    /// Whether unfinished threads exist but none is runnable.
    fn deadlocked(&self) -> bool;

    /// Whether the machine has halted (failure manifested or all threads
    /// finished).
    fn halted(&self) -> bool;

    /// The next instruction `tid` would execute (its parked pc), `None`
    /// for exited threads.
    fn next_instr(&self, tid: ThreadId) -> Option<InstrAddr>;

    /// The thread currently holding `lock`, if any.
    fn lock_holder(&self, lock: LockId) -> Option<ThreadId>;

    /// Injects a registered hardware-IRQ handler as a new runtime thread.
    ///
    /// # Errors
    ///
    /// Exactly the [`ksim::Engine::inject_irq`] contract.
    fn inject_irq(&mut self, prog: ThreadProgId) -> Result<ThreadId, EngineError>;

    /// Switches between cheap (copy-on-write) and deep-materialized
    /// checkpoints — the A/B axis of `report bench-throughput`. Observable
    /// state is identical either way; only cost moves.
    fn set_deep_snapshots(&mut self, deep: bool);

    /// Whether checkpoints are currently deep-materialized.
    fn deep_snapshots(&self) -> bool;

    /// The set of `(thread, address, kind)` memory observations in the
    /// current trace — the watchpoint log a diagnosis consumes. Provided:
    /// a pure extraction over [`ExecBackend::trace`], so it is stable
    /// across snapshot boundaries by construction (invariant 4).
    fn observed_accesses(&self) -> BTreeSet<(ThreadId, Addr, AccessKind)> {
        self.trace()
            .iter()
            .flat_map(|rec| {
                rec.accesses
                    .iter()
                    .map(move |a| (rec.tid, a.addr, a.kind))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

impl ExecBackend for Engine {
    fn kind(&self) -> BackendKind {
        BackendKind::Ksim
    }

    fn program(&self) -> &Arc<Program> {
        Engine::program(self)
    }

    fn reboot(&mut self) {
        Engine::reboot(self);
    }

    fn step(&mut self, tid: ThreadId) -> Result<StepOutcome, EngineError> {
        Engine::step(self, tid)
    }

    fn snapshot(&self) -> BackendSnapshot {
        BackendSnapshot::new(Engine::snapshot(self))
    }

    fn restore(&mut self, snapshot: &BackendSnapshot) {
        let snap = snapshot
            .downcast_ref::<ksim::Snapshot>()
            .expect("ksim backend handed a foreign snapshot handle");
        Engine::restore(self, snap);
    }

    fn failure(&self) -> Option<&Failure> {
        Engine::failure(self)
    }

    fn trace(&self) -> &Trace {
        Engine::trace(self)
    }

    fn threads(&self) -> &[Thread] {
        Engine::threads(self)
    }

    fn thread(&self, tid: ThreadId) -> Option<&Thread> {
        Engine::thread(self, tid)
    }

    fn runnable(&self) -> Vec<ThreadId> {
        Engine::runnable(self)
    }

    fn thread_by_prog(&self, prog: ThreadProgId, occurrence: u32) -> Option<ThreadId> {
        Engine::thread_by_prog(self, prog, occurrence)
    }

    fn all_done(&self) -> bool {
        Engine::all_done(self)
    }

    fn deadlocked(&self) -> bool {
        Engine::deadlocked(self)
    }

    fn halted(&self) -> bool {
        Engine::halted(self)
    }

    fn next_instr(&self, tid: ThreadId) -> Option<InstrAddr> {
        Engine::next_instr(self, tid)
    }

    fn lock_holder(&self, lock: LockId) -> Option<ThreadId> {
        Engine::lock_holder(self, lock)
    }

    fn inject_irq(&mut self, prog: ThreadProgId) -> Result<ThreadId, EngineError> {
        Engine::inject_irq(self, prog)
    }

    fn set_deep_snapshots(&mut self, deep: bool) {
        self.set_snapshot_mode(if deep {
            SnapshotMode::Deep
        } else {
            SnapshotMode::Cow
        });
    }

    fn deep_snapshots(&self) -> bool {
        self.snapshot_mode() == SnapshotMode::Deep
    }
}

/// The registry of execution backends, always compiled so every layer —
/// CLI parsing, executor config, memo/forest keying — speaks one type
/// regardless of which backends this build carries. Booting
/// [`BackendKind::Kvm`] without the `kvm` cargo feature (or without
/// `/dev/kvm`) is rejected by [`BackendKind::available`], which every
/// entry point checks at startup.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The deterministic `ksim` engine (the default).
    #[default]
    Ksim,
    /// The KVM microVM backend: the `ksim` model as control plane, with
    /// data-plane word accesses executed in lockstep inside a real
    /// hardware-virtualized guest. Requires the `kvm` cargo feature and a
    /// usable `/dev/kvm` at runtime.
    Kvm,
}

impl BackendKind {
    /// Every backend kind this build knows about (compiled in or not).
    pub const ALL: [BackendKind; 2] = [BackendKind::Ksim, BackendKind::Kvm];

    /// Whether this backend can actually boot in this build on this host.
    ///
    /// # Errors
    ///
    /// A human-readable reason: the `kvm` feature is not compiled in, or
    /// `/dev/kvm` is absent/unusable. Entry points map this to an exit-2
    /// usage error at startup; CI smoke maps the runtime-only case to a
    /// clean skip.
    pub fn available(self) -> Result<(), String> {
        match self {
            BackendKind::Ksim => Ok(()),
            #[cfg(feature = "kvm")]
            BackendKind::Kvm => crate::backend::kvm::probe(),
            #[cfg(not(feature = "kvm"))]
            BackendKind::Kvm => {
                Err("backend 'kvm' is not compiled in (rebuild with --features kvm)".to_string())
            }
        }
    }

    /// Boots a fresh backend of this kind for `program`.
    ///
    /// # Panics
    ///
    /// When the backend is not [`BackendKind::available`] — callers
    /// validate at startup, so reaching the panic is a plumbing bug.
    #[must_use]
    pub fn boot(self, program: Arc<Program>) -> Box<dyn ExecBackend> {
        match self {
            BackendKind::Ksim => Box::new(Engine::new(program)),
            #[cfg(feature = "kvm")]
            BackendKind::Kvm => match crate::backend::kvm::KvmBackend::new(program) {
                Ok(vm) => Box::new(vm),
                Err(e) => panic!("kvm backend failed to boot: {e}"),
            },
            #[cfg(not(feature = "kvm"))]
            BackendKind::Kvm => {
                panic!("kvm backend is not compiled in (rebuild with --features kvm)")
            }
        }
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<BackendKind, String> {
        match s {
            "ksim" => Ok(BackendKind::Ksim),
            "kvm" => Ok(BackendKind::Kvm),
            other => Err(format!("unknown backend '{other}' (expected ksim|kvm)")),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Ksim => "ksim",
            BackendKind::Kvm => "kvm",
        })
    }
}

#[cfg(feature = "kvm")]
pub mod kvm;

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::builder::ProgramBuilder;

    fn tiny_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new("tiny");
        let g = p.global("g", 0);
        {
            let mut a = p.syscall_thread("A", "writer");
            a.store_global(g, 1u64);
            a.load_global("r0", g);
            a.ret();
        }
        Arc::new(p.build().unwrap())
    }

    #[test]
    fn backend_kind_round_trips_through_strings() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.to_string().parse::<BackendKind>(), Ok(kind));
        }
        let err = "qemu".parse::<BackendKind>().unwrap_err();
        assert!(err.contains("unknown backend 'qemu'"), "{err}");
        assert!(err.contains("ksim|kvm"), "{err}");
    }

    #[test]
    fn ksim_backend_is_always_available() {
        assert_eq!(BackendKind::Ksim.available(), Ok(()));
    }

    #[cfg(not(feature = "kvm"))]
    #[test]
    fn kvm_backend_is_rejected_when_not_compiled_in() {
        let err = BackendKind::Kvm.available().unwrap_err();
        assert!(err.contains("--features kvm"), "{err}");
    }

    #[test]
    fn trait_snapshot_preserves_engine_fast_path_identity() {
        // The opaque handle must carry the inner `Arc` identity through
        // clones: `Engine::restore`'s `Weak` last-restored comparison is
        // pointer-based, and the SavedPrefix caches clone handles freely.
        let mut backend = BackendKind::Ksim.boot(tiny_program());
        let snap = backend.snapshot();
        let clone = snap.clone();
        let a = snap.downcast_ref::<ksim::Snapshot>().unwrap();
        let b = clone.downcast_ref::<ksim::Snapshot>().unwrap();
        assert!(std::ptr::eq(a, b));
        // Restoring the clone right after the original is the no-op path:
        // neither bumps the deep-restore counter past the first.
        backend.restore(&snap);
        backend.restore(&clone);
    }

    #[test]
    fn trait_object_reports_engine_state_faithfully() {
        let program = tiny_program();
        let mut engine = Engine::new(Arc::clone(&program));
        let mut backend = BackendKind::Ksim.boot(Arc::clone(&program));
        let tid = ExecBackend::runnable(&engine)[0];
        loop {
            let direct = engine.step(tid);
            let via = backend.step(tid);
            assert_eq!(direct, via);
            if !matches!(direct, Ok(StepOutcome::Executed(_))) {
                break;
            }
        }
        assert_eq!(ExecBackend::trace(&engine).len(), backend.trace().len());
        assert_eq!(
            ExecBackend::observed_accesses(&engine),
            backend.observed_accesses()
        );
        assert_eq!(backend.kind(), BackendKind::Ksim);
        assert!(backend.all_done());
    }

    #[test]
    fn deep_snapshot_toggle_round_trips() {
        let mut backend = BackendKind::Ksim.boot(tiny_program());
        assert!(!backend.deep_snapshots());
        backend.set_deep_snapshots(true);
        assert!(backend.deep_snapshots());
        backend.set_deep_snapshots(false);
        assert!(!backend.deep_snapshots());
    }
}
