//! The durable, CRC-framed on-disk job queue behind `campaignd`.
//!
//! # File format (`queue.wal`, magic `AITIAQUE`, version 1)
//!
//! The queue reuses the run journal's framing exactly
//! ([`crate::journal`]): an 8-byte magic plus a little-endian `u32`
//! version, then records framed as
//!
//! ```text
//! u32 len (LE) | u32 crc32(payload) (LE) | payload (JSON, `len` bytes)
//! ```
//!
//! Two record kinds exist: `Submit` (a new job: id + opaque payload
//! string) and `Transition` (a lifecycle step: id, new [`JobState`],
//! attempt counter, and — for terminal states — the diagnosis digest plus
//! per-campaign simulated cost). The queue's state is the in-order fold of
//! all records; re-folding the file after a crash reconstructs exactly the
//! lifecycle every job had reached, and jobs whose last state is
//! non-terminal are simply re-dispatched (their per-job run journal makes
//! the re-run resume at zero VM cost).
//!
//! # Durability and torn tails
//!
//! Every append is a single `write_all` of one pre-assembled frame
//! followed by an fsync, so an acked submit survives SIGKILL at any point.
//! A crash mid-append leaves a torn final frame; writers truncate it to
//! the last intact record before appending (warned and counted, never a
//! panic). Readers simply ignore a torn tail.
//!
//! # Multi-process coordination
//!
//! `campaignd submit` runs in a different process from the daemon, so all
//! writes (and write-side truncations) happen under an advisory lock file
//! (`queue.lock`, containing the holder's PID). A lock whose holder is
//! dead (no `/proc/<pid>`) or that has sat unchanged past a staleness
//! timeout is broken — a SIGKILLed daemon must never wedge the queue.
//!
//! # Admission control
//!
//! [`JobQueue::submit`] enforces backpressure: when the number of
//! non-terminal jobs has reached the caller's bound, the submit is
//! rejected with [`SubmitError::Full`] instead of growing the backlog
//! without bound.

use crate::journal::{
    frame_record,
    scan_frames, //
};
use serde::{
    Deserialize,
    Serialize, //
};
use std::{
    collections::BTreeMap,
    fs::{
        File,
        OpenOptions, //
    },
    io::{
        Read,
        Seek,
        SeekFrom,
        Write, //
    },
    path::{
        Path,
        PathBuf, //
    },
    sync::atomic::{
        AtomicU64,
        Ordering, //
    },
    time::Duration,
};

/// The queue file magic.
const MAGIC: [u8; 8] = *b"AITIAQUE";
/// The queue format version.
const VERSION: u32 = 1;
/// Header length: magic plus version.
const HEADER_LEN: u64 = 12;
/// The queue file's name inside the server directory.
const QUEUE_FILE: &str = "queue.wal";
/// The lock file's name inside the server directory.
const LOCK_FILE: &str = "queue.lock";
/// A lock file unchanged for this long is considered stale even if a
/// process with its PID exists (PID reuse): broken and re-acquired.
const LOCK_STALE: Duration = Duration::from_secs(30);
/// How long an acquirer retries before giving up on the lock.
const LOCK_WAIT: Duration = Duration::from_secs(10);

/// A job's lifecycle state.
///
/// `Queued → Admitted → Running → {Complete | Partial | NoReproduction |
/// DeadLettered}`; a supervisor fault moves a job back to `Queued` with a
/// bumped attempt counter until the dead-letter bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted (or re-queued after a supervisor fault); not yet picked
    /// up by a worker.
    Queued,
    /// Claimed by a worker and granted VM slots; the campaign has not
    /// started executing.
    Admitted,
    /// The campaign is executing.
    Running,
    /// Terminal: every race was flipped and judged.
    Complete,
    /// Terminal: a deadline budget degraded the diagnosis to best-so-far
    /// results with explicit unverified accounting.
    Partial,
    /// Terminal: no slice reproduced the failure.
    NoReproduction,
    /// Terminal: the job faulted its supervisor too many times and was
    /// quarantined so it can never wedge the queue.
    DeadLettered,
}

impl JobState {
    /// Whether the state is terminal (the job will never run again).
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Complete
                | JobState::Partial
                | JobState::NoReproduction
                | JobState::DeadLettered
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Admitted => "admitted",
            JobState::Running => "running",
            JobState::Complete => "complete",
            JobState::Partial => "partial",
            JobState::NoReproduction => "no_reproduction",
            JobState::DeadLettered => "dead_lettered",
        };
        f.write_str(s)
    }
}

/// One queue record (the JSON payload of a frame).
#[derive(Clone, Debug, Serialize, Deserialize)]
enum QueueRecord {
    /// A new job.
    Submit {
        /// Monotonically assigned job id.
        id: u64,
        /// The opaque job payload, interpreted by the server's resolver.
        payload: String,
    },
    /// A lifecycle step of an existing job.
    Transition {
        /// The job this transition belongs to.
        id: u64,
        /// The state entered.
        state: JobState,
        /// Supervisor attempt counter at this transition.
        attempt: u32,
        /// Diagnosis digest (terminal, diagnosed states only).
        digest: Option<String>,
        /// Human-readable detail (dead-letter reason, resolver error).
        detail: Option<String>,
        /// The campaign's simulated pool makespan, in nanoseconds
        /// (terminal states only) — the deterministic cost `report
        /// bench-server` aggregates.
        sim_makespan_ns: Option<u64>,
    },
}

/// A job's folded state: the result of applying every record in order.
#[derive(Clone, Debug, Serialize)]
pub struct JobSnapshot {
    /// Job id (submission order).
    pub id: u64,
    /// The opaque job payload.
    pub payload: String,
    /// Last recorded lifecycle state.
    pub state: JobState,
    /// Supervisor attempt counter (faults consumed so far).
    pub attempt: u32,
    /// Diagnosis digest, once terminal and diagnosed.
    pub digest: Option<String>,
    /// Dead-letter reason or resolver error, when recorded.
    pub detail: Option<String>,
    /// The campaign's simulated pool makespan in nanoseconds, once
    /// terminal.
    pub sim_makespan_ns: Option<u64>,
}

/// Why a submit was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// Backpressure: the queue already holds `queued` non-terminal jobs,
    /// at (or beyond) the admission bound `max`.
    Full {
        /// Non-terminal jobs currently in the queue.
        queued: usize,
        /// The configured bound.
        max: usize,
    },
    /// The underlying file operation failed.
    Io(std::io::Error),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full { queued, max } => write!(
                f,
                "queue full: {queued} non-terminal jobs at the admission bound of {max}"
            ),
            SubmitError::Io(e) => write!(f, "queue I/O error: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<std::io::Error> for SubmitError {
    fn from(e: std::io::Error) -> Self {
        SubmitError::Io(e)
    }
}

/// The durable job queue: a write-ahead log of submits and lifecycle
/// transitions, safe against SIGKILL at any byte and shared between the
/// daemon and submitter processes through the lock file.
pub struct JobQueue {
    dir: PathBuf,
    path: PathBuf,
    truncations: AtomicU64,
}

impl JobQueue {
    /// Opens (or creates) the queue under server directory `dir`, creating
    /// the directory and validating or writing the file header. A torn
    /// tail is truncated to the last intact record.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory or file cannot
    /// be created, read, locked, or repaired.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<JobQueue> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let queue = JobQueue {
            path: dir.join(QUEUE_FILE),
            dir,
            truncations: AtomicU64::new(0),
        };
        let _lock = LockGuard::acquire(&queue.dir)?;
        let mut file = queue.open_file()?;
        queue.repair_locked(&mut file)?;
        Ok(queue)
    }

    /// The server directory this queue lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The queue file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Torn-tail (or bad-header) truncations performed by this handle.
    #[must_use]
    pub fn truncations(&self) -> u64 {
        self.truncations.load(Ordering::SeqCst)
    }

    fn open_file(&self) -> std::io::Result<File> {
        OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.path)
    }

    /// Validates the header (writing one into an empty file) and truncates
    /// any torn tail. Must be called with the lock held.
    fn repair_locked(&self, file: &mut File) -> std::io::Result<u64> {
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(&MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_data()?;
            return Ok(HEADER_LEN);
        }
        if bytes.len() < HEADER_LEN as usize
            || bytes[..8] != MAGIC
            || bytes[8..12] != VERSION.to_le_bytes()
        {
            eprintln!(
                "aitia-queue: {} has an unrecognized header; starting fresh \
                 (all queued jobs are lost — resubmit them)",
                self.path.display()
            );
            self.truncations.fetch_add(1, Ordering::SeqCst);
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_data()?;
            return Ok(HEADER_LEN);
        }
        let (_, good_end, torn) = scan_frames(&bytes, HEADER_LEN);
        if torn {
            eprintln!(
                "aitia-queue: {} has a torn or corrupt tail at byte {good_end}; \
                 truncating to the last intact record",
                self.path.display()
            );
            self.truncations.fetch_add(1, Ordering::SeqCst);
            file.set_len(good_end)?;
        }
        Ok(good_end)
    }

    /// Reads and folds every intact record into per-job snapshots, ordered
    /// by job id. Read-only: a torn tail is ignored, not repaired.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be read.
    pub fn fold(&self) -> std::io::Result<BTreeMap<u64, JobSnapshot>> {
        let mut bytes = Vec::new();
        File::open(&self.path)?.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_LEN as usize || bytes[..8] != MAGIC {
            return Ok(BTreeMap::new());
        }
        let (frames, _, _) = scan_frames(&bytes, HEADER_LEN);
        let mut jobs = BTreeMap::new();
        for frame in frames {
            let Ok(record) = std::str::from_utf8(frame.payload)
                .map_err(|e| e.to_string())
                .and_then(|s| serde_json::from_str::<QueueRecord>(s).map_err(|e| e.to_string()))
            else {
                // A CRC-clean frame that is not a record: skip it rather
                // than dropping everything after it — fold is read-only.
                continue;
            };
            match record {
                QueueRecord::Submit { id, payload } => {
                    jobs.entry(id).or_insert(JobSnapshot {
                        id,
                        payload,
                        state: JobState::Queued,
                        attempt: 0,
                        digest: None,
                        detail: None,
                        sim_makespan_ns: None,
                    });
                }
                QueueRecord::Transition {
                    id,
                    state,
                    attempt,
                    digest,
                    detail,
                    sim_makespan_ns,
                } => {
                    if let Some(job) = jobs.get_mut(&id) {
                        job.state = state;
                        job.attempt = attempt;
                        if digest.is_some() {
                            job.digest = digest;
                        }
                        if detail.is_some() {
                            job.detail = detail;
                        }
                        if sim_makespan_ns.is_some() {
                            job.sim_makespan_ns = sim_makespan_ns;
                        }
                    }
                }
            }
        }
        Ok(jobs)
    }

    /// Appends one record under the lock (repairing any torn tail first)
    /// and fsyncs before returning — an acked append is durable.
    fn append(&self, record: &QueueRecord) -> std::io::Result<()> {
        let payload = serde_json::to_string(record)
            .map_err(std::io::Error::other)?
            .into_bytes();
        let framed = frame_record(&payload);
        let _lock = LockGuard::acquire(&self.dir)?;
        let mut file = self.open_file()?;
        let end = self.repair_locked(&mut file)?;
        file.seek(SeekFrom::Start(end))?;
        file.write_all(&framed)?;
        file.sync_data()?;
        Ok(())
    }

    /// Submits a job. Idempotent by payload: re-submitting an existing
    /// payload returns the existing job's id without appending (so a
    /// client that lost its ack, or a restart script that replays its
    /// submit list, never duplicates work). Backpressure: rejected with
    /// [`SubmitError::Full`] once `max_queued` non-terminal jobs are
    /// pending.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] on backpressure, [`SubmitError::Io`] on file
    /// errors.
    pub fn submit(&self, payload: &str, max_queued: usize) -> Result<u64, SubmitError> {
        let jobs = self.fold().map_err(SubmitError::Io)?;
        if let Some(existing) = jobs.values().find(|j| j.payload == payload) {
            return Ok(existing.id);
        }
        let queued = jobs.values().filter(|j| !j.state.is_terminal()).count();
        if queued >= max_queued {
            return Err(SubmitError::Full {
                queued,
                max: max_queued,
            });
        }
        let id = jobs.keys().next_back().map_or(1, |last| last + 1);
        self.append(&QueueRecord::Submit {
            id,
            payload: payload.to_string(),
        })
        .map_err(SubmitError::Io)?;
        Ok(id)
    }

    /// Appends a lifecycle transition.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the append fails.
    pub fn transition(
        &self,
        id: u64,
        state: JobState,
        attempt: u32,
        digest: Option<String>,
        detail: Option<String>,
        sim_makespan_ns: Option<u64>,
    ) -> std::io::Result<()> {
        self.append(&QueueRecord::Transition {
            id,
            state,
            attempt,
            digest,
            detail,
            sim_makespan_ns,
        })
    }

    /// Number of intact records in the queue file at `dir` (tests and the
    /// kill-point proptest interrupt at exact record boundaries).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be read.
    pub fn record_count(dir: impl AsRef<Path>) -> std::io::Result<usize> {
        let mut bytes = Vec::new();
        File::open(dir.as_ref().join(QUEUE_FILE))?.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_LEN as usize || bytes[..8] != MAGIC {
            return Ok(0);
        }
        Ok(scan_frames(&bytes, HEADER_LEN).0.len())
    }

    /// Truncates the queue file at `dir` so at most `keep` records remain
    /// — the kill-and-restart tests model SIGKILL at exact interruption
    /// points with this. Returns how many records remain.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be read or
    /// truncated.
    pub fn truncate_at_record(dir: impl AsRef<Path>, keep: usize) -> std::io::Result<usize> {
        let path = dir.as_ref().join(QUEUE_FILE);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_LEN as usize {
            return Ok(0);
        }
        let (frames, _, _) = scan_frames(&bytes, HEADER_LEN);
        let kept = frames.len().min(keep);
        let end = if kept == 0 {
            HEADER_LEN
        } else {
            let f = &frames[kept - 1];
            f.start + 8 + f.payload.len() as u64
        };
        OpenOptions::new().write(true).open(&path)?.set_len(end)?;
        Ok(kept)
    }
}

/// RAII guard over the advisory `queue.lock` file: created with
/// `create_new` (atomic on POSIX), holding the owner's PID; removed on
/// drop. Stale locks — dead owner, or unchanged past [`LOCK_STALE`] — are
/// broken so a SIGKILLed holder never wedges the queue.
struct LockGuard {
    path: PathBuf,
}

impl LockGuard {
    fn acquire(dir: &Path) -> std::io::Result<LockGuard> {
        let path = dir.join(LOCK_FILE);
        let start = std::time::Instant::now();
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(LockGuard { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(&path) {
                        // Best-effort break: if another process raced us to
                        // the removal, the next create_new attempt decides.
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    if start.elapsed() > LOCK_WAIT {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!("queue lock {} held too long", path.display()),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Whether the lock at `path` is stale: its owner is gone (no
/// `/proc/<pid>`), its content is unreadable, or it has sat unchanged past
/// [`LOCK_STALE`].
fn lock_is_stale(path: &Path) -> bool {
    if let Ok(meta) = std::fs::metadata(path) {
        if let Ok(modified) = meta.modified() {
            if let Ok(age) = modified.elapsed() {
                if age > LOCK_STALE {
                    return true;
                }
            }
        }
    } else {
        // Already gone: the next create_new attempt will settle it.
        return false;
    }
    let Ok(content) = std::fs::read_to_string(path) else {
        return false;
    };
    let Ok(pid) = content.trim().parse::<u32>() else {
        return true;
    };
    if pid == std::process::id() {
        // Our own PID in a lock we do not hold: a previous incarnation of
        // this process id (or a crashed thread) left it behind.
        return false;
    }
    !Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "aitia-queue-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn submit_fold_roundtrip_and_idempotency() {
        let dir = temp_dir("roundtrip");
        let q = JobQueue::open(&dir).unwrap();
        let a = q.submit("gen:1", 16).unwrap();
        let b = q.submit("gen:2", 16).unwrap();
        assert_eq!((a, b), (1, 2));
        // Idempotent: same payload, same id, no new record.
        let before = JobQueue::record_count(&dir).unwrap();
        assert_eq!(q.submit("gen:1", 16).unwrap(), 1);
        assert_eq!(JobQueue::record_count(&dir).unwrap(), before);
        let jobs = q.fold().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[&1].state, JobState::Queued);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transitions_fold_in_order_and_survive_reopen() {
        let dir = temp_dir("transitions");
        let q = JobQueue::open(&dir).unwrap();
        q.submit("gen:1", 16).unwrap();
        q.transition(1, JobState::Admitted, 0, None, None, None)
            .unwrap();
        q.transition(1, JobState::Running, 0, None, None, None)
            .unwrap();
        q.transition(
            1,
            JobState::Complete,
            0,
            Some("abcd".into()),
            None,
            Some(42),
        )
        .unwrap();
        drop(q);
        let q = JobQueue::open(&dir).unwrap();
        let jobs = q.fold().unwrap();
        assert_eq!(jobs[&1].state, JobState::Complete);
        assert_eq!(jobs[&1].digest.as_deref(), Some("abcd"));
        assert_eq!(jobs[&1].sim_makespan_ns, Some(42));
        assert!(jobs[&1].state.is_terminal());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backpressure_rejects_at_the_bound_but_terminal_jobs_free_slots() {
        let dir = temp_dir("backpressure");
        let q = JobQueue::open(&dir).unwrap();
        q.submit("gen:1", 2).unwrap();
        q.submit("gen:2", 2).unwrap();
        match q.submit("gen:3", 2) {
            Err(SubmitError::Full { queued: 2, max: 2 }) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        q.transition(1, JobState::Complete, 0, None, None, None)
            .unwrap();
        assert_eq!(q.submit("gen:3", 2).unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_to_last_good_record_never_panics() {
        let dir = temp_dir("torn");
        let q = JobQueue::open(&dir).unwrap();
        q.submit("gen:1", 16).unwrap();
        q.submit("gen:2", 16).unwrap();
        drop(q);
        // Tear the last record mid-frame.
        let path = dir.join(QUEUE_FILE);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let q = JobQueue::open(&dir).unwrap();
        assert_eq!(q.truncations(), 1, "the torn tail was repaired on open");
        let jobs = q.fold().unwrap();
        assert_eq!(jobs.len(), 1, "only the intact record survives");
        // The queue keeps working: appends land after the repaired tail.
        assert_eq!(q.submit("gen:2", 16).unwrap(), 2);
        assert_eq!(q.fold().unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unrecognized_header_degrades_to_fresh_queue() {
        let dir = temp_dir("header");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(QUEUE_FILE), b"NOTAQUEUE-FILE").unwrap();
        let q = JobQueue::open(&dir).unwrap();
        assert_eq!(q.truncations(), 1);
        assert!(q.fold().unwrap().is_empty());
        assert_eq!(q.submit("gen:1", 16).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_at_record_models_kill_points() {
        let dir = temp_dir("killpoint");
        let q = JobQueue::open(&dir).unwrap();
        for i in 0..4 {
            q.submit(&format!("gen:{i}"), 16).unwrap();
        }
        assert_eq!(JobQueue::record_count(&dir).unwrap(), 4);
        assert_eq!(JobQueue::truncate_at_record(&dir, 2).unwrap(), 2);
        assert_eq!(JobQueue::record_count(&dir).unwrap(), 2);
        let jobs = q.fold().unwrap();
        assert_eq!(jobs.len(), 2);
        // Resubmitting the lost payloads reassigns fresh ids past the
        // surviving ones — nothing collides, nothing is double-queued.
        assert_eq!(q.submit("gen:0", 16).unwrap(), 1);
        assert_eq!(q.submit("gen:2", 16).unwrap(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_of_a_dead_process_is_broken() {
        let dir = temp_dir("lock");
        std::fs::create_dir_all(&dir).unwrap();
        // PID 4000000 is far above any default pid_max... but be safe and
        // pick one that provably does not exist.
        let mut dead = 4_000_000u32;
        while Path::new(&format!("/proc/{dead}")).exists() {
            dead -= 1;
        }
        std::fs::write(dir.join(LOCK_FILE), format!("{dead}")).unwrap();
        // open() acquires the lock by breaking the stale one.
        let q = JobQueue::open(&dir).unwrap();
        assert_eq!(q.submit("gen:1", 16).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
