//! `campaignd` — a supervised multi-campaign diagnosis service.
//!
//! The server turns the one-shot [`crate::campaign::Campaign`] driver
//! into a long-lived daemon: diagnosis jobs stream into a durable
//! CRC-framed on-disk queue ([`queue::JobQueue`]) and run as concurrent
//! campaigns against *shared* infrastructure — one VM pool carved up by
//! deficit-round-robin fair sharing ([`supervisor::FairShare`]) and one
//! cross-campaign [`Substrate`] (sharded memo table + snapshot forest),
//! so a schedule proven by one campaign is free for every later one.
//!
//! Robustness is the point:
//!
//! * **Admission control.** Submission applies backpressure once
//!   `max_queued` non-terminal jobs are pending; in-flight campaigns are
//!   bounded by `max_inflight` worker threads.
//! * **Supervision.** Each campaign runs under `catch_unwind`; a panic
//!   (in the resolver or anywhere in the diagnosis pipeline) is a counted
//!   fault, not a daemon crash. Faulted jobs re-queue with
//!   seeded-jittered, clamped exponential backoff
//!   ([`supervisor::RetryBackoff`]) and dead-letter into
//!   `quarantine/` after `max_faults` faults — a poison job can never
//!   wedge the queue behind it.
//! * **Crash recovery.** Every lifecycle step is a fsynced queue record
//!   and every campaign writes its own run journal
//!   (`journals/job-<id>.wal`). SIGKILL at any byte, restart, and every
//!   queued or running campaign resumes — replaying its journal to a
//!   bit-identical diagnosis without re-running a single VM schedule.
//! * **Observability.** Lifecycle `Queued → Admitted → Running →
//!   Complete/Partial/NoReproduction/DeadLettered` is visible in
//!   `status.json` (written atomically) alongside [`ServerStats`]
//!   counters.
//!
//! The server is policy-free about what a job *is*: payloads are opaque
//! strings handed to a caller-supplied [`JobResolver`], which maps them
//! to a program plus LIFS/causality configuration. The bench harness
//! resolves `cve:<bug>:<scale>` and `gen:<seed>` payloads against the
//! bug corpus.

pub mod queue;
pub mod supervisor;

pub use queue::{
    JobQueue,
    JobSnapshot,
    JobState,
    SubmitError, //
};
pub use supervisor::{
    supervised,
    FairShare,
    RetryBackoff, //
};

use crate::backend::BackendKind;
use crate::campaign::{
    Campaign,
    CampaignOutcome, //
};
use crate::causality::CausalityConfig;
use crate::exec::{
    FaultInjection,
    Substrate, //
};
use crate::lifs::LifsConfig;
use crate::manager::ManagerConfig;
use crate::report;
use ksim::Program;
use serde::{
    Deserialize,
    Serialize, //
};
use std::{
    collections::{
        BTreeMap,
        BTreeSet, //
    },
    hash::{
        Hash,
        Hasher, //
    },
    path::{
        Path,
        PathBuf, //
    },
    sync::atomic::{
        AtomicU64,
        Ordering, //
    },
    sync::{
        Arc,
        Condvar,
        Mutex, //
    },
    time::{
        Duration,
        Instant, //
    },
};

/// The digest recorded for a job whose campaign reproduced nothing.
pub const NO_REPRO_DIGEST: &str = "no-reproduction";

/// A payload resolved into everything a campaign needs.
pub struct ResolvedJob {
    /// The program to diagnose.
    pub program: Arc<Program>,
    /// LIFS configuration for the reproduction stage.
    pub lifs: LifsConfig,
    /// Causality Analysis configuration for the flipping stage.
    pub causality: CausalityConfig,
    /// Optional deterministic fault injection for the VM pool.
    pub fault: Option<FaultInjection>,
}

/// Maps opaque job payloads to diagnosable programs.
///
/// Implementations live above this crate (the bench harness resolves
/// against its bug corpus); the server only needs `resolve`. Returning
/// `Err` — or panicking — counts as a supervisor fault: the job retries
/// with backoff and dead-letters at the fault bound.
pub trait JobResolver: Send + Sync {
    /// Resolves `payload` into a job, or an error describing why it
    /// cannot run.
    ///
    /// # Errors
    ///
    /// A human-readable reason; the server records it on the job.
    fn resolve(&self, payload: &str) -> Result<ResolvedJob, String>;
}

/// Static configuration of a [`CampaignServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Server state directory: queue, journals, results, quarantine,
    /// status file.
    pub dir: PathBuf,
    /// Maximum concurrently running campaigns (worker threads).
    pub max_inflight: usize,
    /// Total VM slots shared across campaigns by fair-share scheduling.
    pub total_vms: usize,
    /// Backpressure bound: submits are rejected once this many
    /// non-terminal jobs are queued.
    pub max_queued: usize,
    /// Supervisor faults before a job is dead-lettered.
    pub max_faults: u32,
    /// Retry backoff policy for faulted jobs.
    pub backoff: RetryBackoff,
    /// Per-campaign wall-clock deadline in seconds (degrades to
    /// [`JobState::Partial`]).
    pub wall_deadline_s: Option<f64>,
    /// Per-campaign simulated-time deadline in seconds.
    pub sim_deadline_s: Option<f64>,
    /// Exit [`CampaignServer::run`] once the queue is drained (tests,
    /// batch mode) instead of idling for more submits.
    pub drain: bool,
    /// How often idle workers poll the queue file for submits made by
    /// other processes, in milliseconds.
    pub poll_ms: u64,
    /// The cross-campaign execution substrate (memo table + snapshot
    /// forest) every campaign shares.
    pub substrate: Substrate,
    /// Which execution backend every campaign's worker VMs boot
    /// ([`crate::exec::ExecutorConfig::backend`]). Checked by
    /// [`ServerConfig::validate`], so an unavailable backend is a startup
    /// usage error, never a mid-campaign panic.
    pub backend: BackendKind,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            dir: PathBuf::from("campaignd-state"),
            max_inflight: 4,
            total_vms: 8,
            max_queued: 1024,
            max_faults: 3,
            backoff: RetryBackoff::default(),
            wall_deadline_s: None,
            sim_deadline_s: None,
            drain: false,
            poll_ms: 50,
            substrate: Substrate::process_global(),
            backend: BackendKind::default(),
        }
    }
}

impl ServerConfig {
    /// Default configuration rooted at `dir`, with a private substrate so
    /// separate servers (and tests) do not share memoized schedules.
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            dir: dir.into(),
            substrate: Substrate::private(16_384, 256),
            ..ServerConfig::default()
        }
    }

    /// Rejects nonsensical knob combinations with a human-readable
    /// reason (the CLI maps this to the exit-2 usage standard).
    ///
    /// # Errors
    ///
    /// A message naming the offending knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_inflight == 0 {
            return Err("--max-inflight must be at least 1".into());
        }
        if self.total_vms == 0 {
            return Err("--total-vms must be at least 1".into());
        }
        if self.max_queued == 0 {
            return Err("--max-queued must be at least 1".into());
        }
        if self.max_faults == 0 {
            return Err("--max-faults must be at least 1".into());
        }
        if self.poll_ms == 0 {
            return Err("--poll-ms must be at least 1".into());
        }
        if self.backoff.base_ms == 0 {
            return Err("--backoff-base-ms must be at least 1".into());
        }
        if self.backoff.max_ms < self.backoff.base_ms {
            return Err("--backoff-max-ms must be at least --backoff-base-ms".into());
        }
        self.backend.available()?;
        for (name, v) in [
            ("--wall-deadline-s", self.wall_deadline_s),
            ("--sim-deadline-s", self.sim_deadline_s),
        ] {
            if let Some(d) = v {
                if !d.is_finite() || d <= 0.0 {
                    return Err(format!("{name} must be a finite positive number"));
                }
            }
        }
        Ok(())
    }
}

/// Monotonic counters describing everything the server has done.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Jobs accepted through this handle's [`CampaignServer::submit`].
    pub submitted: u64,
    /// Submits rejected by backpressure.
    pub rejected_full: u64,
    /// Non-terminal jobs recovered from the queue at startup (crash
    /// recovery) — each resumes from its journal.
    pub resumed: u64,
    /// Jobs discovered by polling the queue file (submitted by another
    /// process while the daemon ran).
    pub discovered: u64,
    /// Campaigns admitted to the VM pool (includes retries).
    pub admitted: u64,
    /// Supervisor faults caught (panics and resolver errors).
    pub supervisor_faults: u64,
    /// Faulted jobs re-queued with backoff.
    pub retried: u64,
    /// Jobs that reached [`JobState::Complete`].
    pub completed: u64,
    /// Jobs that reached [`JobState::Partial`].
    pub partial: u64,
    /// Jobs that reached [`JobState::NoReproduction`].
    pub no_reproduction: u64,
    /// Jobs quarantined as [`JobState::DeadLettered`].
    pub dead_lettered: u64,
    /// Sum of per-campaign simulated pool makespans, in nanoseconds —
    /// the deterministic cost basis for `report bench-server`.
    pub sim_makespan_ns: u64,
}

impl ServerStats {
    /// Jobs that reached any terminal state.
    #[must_use]
    pub fn terminal(&self) -> u64 {
        self.completed + self.partial + self.no_reproduction + self.dead_lettered
    }
}

/// Atomic backing for [`ServerStats`].
#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    rejected_full: AtomicU64,
    resumed: AtomicU64,
    discovered: AtomicU64,
    admitted: AtomicU64,
    supervisor_faults: AtomicU64,
    retried: AtomicU64,
    completed: AtomicU64,
    partial: AtomicU64,
    no_reproduction: AtomicU64,
    dead_lettered: AtomicU64,
    sim_makespan_ns: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> ServerStats {
        let load = |c: &AtomicU64| c.load(Ordering::SeqCst);
        ServerStats {
            submitted: load(&self.submitted),
            rejected_full: load(&self.rejected_full),
            resumed: load(&self.resumed),
            discovered: load(&self.discovered),
            admitted: load(&self.admitted),
            supervisor_faults: load(&self.supervisor_faults),
            retried: load(&self.retried),
            completed: load(&self.completed),
            partial: load(&self.partial),
            no_reproduction: load(&self.no_reproduction),
            dead_lettered: load(&self.dead_lettered),
            sim_makespan_ns: load(&self.sim_makespan_ns),
        }
    }
}

/// The shape of `status.json`: counters plus every job's folded
/// lifecycle state.
#[derive(Serialize)]
struct ServerStatus {
    /// Counter snapshot at write time.
    stats: ServerStats,
    /// Folded per-job states, in id order.
    jobs: Vec<JobSnapshot>,
}

/// The quarantine post-mortem written for a dead-lettered job.
#[derive(Serialize)]
struct QuarantineRecord {
    /// The dead-lettered job.
    id: u64,
    /// Its opaque payload — kept verbatim for offline reproduction.
    payload: String,
    /// Supervisor faults consumed before quarantine.
    faults: u32,
    /// The last fault's message.
    last_fault: String,
}

/// A job waiting to be (re)dispatched.
struct PendingJob {
    payload: String,
    attempt: u32,
    not_before: Instant,
}

/// Worker-shared dispatch state, guarded by one mutex + condvar.
struct Dispatch {
    /// Jobs eligible (or soon eligible) to run, by id.
    pending: BTreeMap<u64, PendingJob>,
    /// Ids ever seen by this server instance (pending, running, or
    /// terminal) — polls skip them.
    seen: BTreeSet<u64>,
    /// Campaigns currently executing.
    running: usize,
    /// The fair-share VM-slot allocator.
    fair: FairShare,
    /// Set to stop all workers (drain reached, or [`CampaignServer::stop`]).
    stop: bool,
    /// Last time the queue file was polled for foreign submits.
    last_poll: Instant,
}

/// What one supervised campaign attempt produced.
struct JobDone {
    state: JobState,
    digest: String,
    report: Option<String>,
    sim_ns: u64,
}

/// The long-lived multi-campaign diagnosis service.
pub struct CampaignServer {
    config: ServerConfig,
    queue: JobQueue,
    resolver: Arc<dyn JobResolver>,
    dispatch: Mutex<Dispatch>,
    cv: Condvar,
    stats: StatCells,
}

impl CampaignServer {
    /// Opens (or recovers) a server over the state directory in
    /// `config.dir`: the queue is opened (torn tails repaired), the
    /// `journals/`, `results/` and `quarantine/` subdirectories are
    /// created, and every non-terminal job in the queue is scheduled for
    /// (re-)dispatch.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures (as
    /// `InvalidInput`) and state-directory I/O errors.
    pub fn open(config: ServerConfig, resolver: Arc<dyn JobResolver>) -> std::io::Result<Self> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let queue = JobQueue::open(&config.dir)?;
        for sub in ["journals", "results", "quarantine"] {
            std::fs::create_dir_all(config.dir.join(sub))?;
        }
        let fair = FairShare::new(config.total_vms, config.max_inflight);
        let server = CampaignServer {
            queue,
            resolver,
            dispatch: Mutex::new(Dispatch {
                pending: BTreeMap::new(),
                seen: BTreeSet::new(),
                running: 0,
                fair,
                stop: false,
                last_poll: Instant::now(),
            }),
            cv: Condvar::new(),
            stats: StatCells::default(),
            config,
        };
        server.bootstrap()?;
        Ok(server)
    }

    /// The server configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// The folded per-job lifecycle states, by id.
    ///
    /// # Errors
    ///
    /// Propagates queue-file read errors.
    pub fn jobs(&self) -> std::io::Result<BTreeMap<u64, JobSnapshot>> {
        self.queue.fold()
    }

    /// Recovers queue state at startup: every non-terminal job becomes
    /// pending; jobs that were `Admitted`/`Running` when the previous
    /// incarnation died count as `resumed`.
    fn bootstrap(&self) -> std::io::Result<()> {
        let jobs = self.queue.fold()?;
        let mut d = self.dispatch.lock().expect("dispatch poisoned");
        let now = Instant::now();
        for job in jobs.values() {
            d.seen.insert(job.id);
            if job.state.is_terminal() {
                continue;
            }
            if job.state != JobState::Queued {
                self.stats.resumed.fetch_add(1, Ordering::SeqCst);
            }
            d.pending.insert(
                job.id,
                PendingJob {
                    payload: job.payload.clone(),
                    attempt: job.attempt,
                    not_before: now,
                },
            );
        }
        drop(d);
        self.write_status();
        Ok(())
    }

    /// Submits a job payload, applying backpressure at `max_queued`.
    /// Idempotent by payload (a duplicate returns the existing id).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] on backpressure; [`SubmitError::Io`] on
    /// queue-file errors.
    pub fn submit(&self, payload: &str) -> Result<u64, SubmitError> {
        match self.queue.submit(payload, self.config.max_queued) {
            Ok(id) => {
                let mut d = self.dispatch.lock().expect("dispatch poisoned");
                if d.seen.insert(id) {
                    self.stats.submitted.fetch_add(1, Ordering::SeqCst);
                    d.pending.insert(
                        id,
                        PendingJob {
                            payload: payload.to_string(),
                            attempt: 0,
                            not_before: Instant::now(),
                        },
                    );
                    self.cv.notify_all();
                }
                Ok(id)
            }
            Err(e) => {
                if matches!(e, SubmitError::Full { .. }) {
                    self.stats.rejected_full.fetch_add(1, Ordering::SeqCst);
                }
                Err(e)
            }
        }
    }

    /// Asks all workers to stop after their current campaign.
    pub fn stop(&self) {
        let mut d = self.dispatch.lock().expect("dispatch poisoned");
        d.stop = true;
        self.cv.notify_all();
    }

    /// Runs `max_inflight` campaign workers until [`CampaignServer::stop`]
    /// — or, with `drain` set, until every job has reached a terminal
    /// state. Returns the final counter snapshot.
    pub fn run(&self) -> ServerStats {
        self.write_pidfile();
        std::thread::scope(|s| {
            for _ in 0..self.config.max_inflight {
                s.spawn(|| self.worker());
            }
        });
        self.write_status();
        let _ = std::fs::remove_file(self.config.dir.join("campaignd.pid"));
        self.stats()
    }

    /// One worker: claim an eligible job and a fair-share width, execute
    /// it supervised, release, repeat.
    fn worker(&self) {
        loop {
            let claimed = {
                let mut d = self.dispatch.lock().expect("dispatch poisoned");
                loop {
                    if d.stop {
                        break None;
                    }
                    self.poll_foreign(&mut d, false);
                    let now = Instant::now();
                    let due = d
                        .pending
                        .iter()
                        .find(|(_, p)| p.not_before <= now)
                        .map(|(&id, _)| id);
                    if let Some(id) = due {
                        if let Some(width) = d.fair.grant() {
                            let p = d.pending.remove(&id).expect("due job vanished");
                            d.running += 1;
                            break Some((id, p.payload, p.attempt, width));
                        }
                        // Pool exhausted: wait for a release.
                        d = self
                            .cv
                            .wait_timeout(d, Duration::from_millis(self.config.poll_ms))
                            .expect("dispatch poisoned")
                            .0;
                        continue;
                    }
                    if d.pending.is_empty() && d.running == 0 && self.config.drain {
                        // Final poll so a submit racing the drain is not
                        // stranded.
                        self.poll_foreign(&mut d, true);
                        if d.pending.is_empty() {
                            d.stop = true;
                            self.cv.notify_all();
                            break None;
                        }
                        continue;
                    }
                    // Sleep until the next backoff expiry or poll tick.
                    let wait = d
                        .pending
                        .values()
                        .map(|p| p.not_before.saturating_duration_since(now))
                        .min()
                        .unwrap_or(Duration::from_millis(self.config.poll_ms))
                        .min(Duration::from_millis(self.config.poll_ms))
                        .max(Duration::from_millis(1));
                    d = self.cv.wait_timeout(d, wait).expect("dispatch poisoned").0;
                }
            };
            let Some((id, payload, attempt, width)) = claimed else {
                return;
            };
            self.execute(id, &payload, attempt, width);
            {
                let mut d = self.dispatch.lock().expect("dispatch poisoned");
                d.running -= 1;
                d.fair.release(width);
                self.cv.notify_all();
            }
            self.write_status();
        }
    }

    /// Folds the queue file looking for jobs submitted by other
    /// processes. Rate-limited to `poll_ms` unless `force`.
    fn poll_foreign(&self, d: &mut Dispatch, force: bool) {
        if !force && d.last_poll.elapsed() < Duration::from_millis(self.config.poll_ms) {
            return;
        }
        d.last_poll = Instant::now();
        let Ok(jobs) = self.queue.fold() else { return };
        let now = Instant::now();
        for job in jobs.values() {
            if job.state.is_terminal() || !d.seen.insert(job.id) {
                continue;
            }
            self.stats.discovered.fetch_add(1, Ordering::SeqCst);
            d.pending.insert(
                job.id,
                PendingJob {
                    payload: job.payload.clone(),
                    attempt: job.attempt,
                    not_before: now,
                },
            );
        }
    }

    /// Runs one supervised campaign attempt for a claimed job.
    fn execute(&self, id: u64, payload: &str, attempt: u32, width: usize) {
        let _ = self
            .queue
            .transition(id, JobState::Admitted, attempt, None, None, None);
        self.stats.admitted.fetch_add(1, Ordering::SeqCst);
        let _ = self
            .queue
            .transition(id, JobState::Running, attempt, None, None, None);
        self.write_status();
        let journal_path = self
            .config
            .dir
            .join("journals")
            .join(format!("job-{id}.wal"));
        let outcome = supervised(|| -> Result<JobDone, String> {
            let resolved = self.resolver.resolve(payload)?;
            let config = ManagerConfig {
                vms: width,
                lifs: resolved.lifs,
                causality: resolved.causality,
                fault: resolved.fault,
                memo: true,
                substrate: self.config.substrate.clone(),
                wall_deadline_s: self.config.wall_deadline_s,
                sim_deadline_s: self.config.sim_deadline_s,
                journal: None,
                backend: self.config.backend,
            };
            let campaign = Campaign::with_journal_path(config, &journal_path);
            let out = campaign.diagnose_program(Arc::clone(&resolved.program));
            let sim_ns = campaign.manager().exec_stats().sim_makespan_ns;
            let (state, digest, text) = classify(&resolved.program, &out);
            Ok(JobDone {
                state,
                digest,
                report: text,
                sim_ns,
            })
        })
        .and_then(|r| r);
        match outcome {
            Ok(done) => {
                if let Some(text) = &done.report {
                    let path = self
                        .config
                        .dir
                        .join("results")
                        .join(format!("job-{id}.report.txt"));
                    let _ = write_atomic(&path, format!("{text}\n").as_bytes());
                }
                let cell = match done.state {
                    JobState::Complete => &self.stats.completed,
                    JobState::Partial => &self.stats.partial,
                    _ => &self.stats.no_reproduction,
                };
                cell.fetch_add(1, Ordering::SeqCst);
                self.stats
                    .sim_makespan_ns
                    .fetch_add(done.sim_ns, Ordering::SeqCst);
                let _ = self.queue.transition(
                    id,
                    done.state,
                    attempt,
                    Some(done.digest),
                    None,
                    Some(done.sim_ns),
                );
            }
            Err(fault) => {
                self.stats.supervisor_faults.fetch_add(1, Ordering::SeqCst);
                let attempt = attempt + 1;
                if attempt >= self.config.max_faults {
                    self.dead_letter(id, payload, attempt, &fault);
                } else {
                    self.stats.retried.fetch_add(1, Ordering::SeqCst);
                    let _ = self.queue.transition(
                        id,
                        JobState::Queued,
                        attempt,
                        None,
                        Some(fault),
                        None,
                    );
                    let delay = self.config.backoff.delay(id, attempt);
                    let mut d = self.dispatch.lock().expect("dispatch poisoned");
                    d.pending.insert(
                        id,
                        PendingJob {
                            payload: payload.to_string(),
                            attempt,
                            not_before: Instant::now() + delay,
                        },
                    );
                    self.cv.notify_all();
                }
            }
        }
    }

    /// Quarantines a job that faulted the supervisor `attempt` times:
    /// a JSON post-mortem under `quarantine/` plus a terminal
    /// `DeadLettered` record. Later jobs are unaffected.
    fn dead_letter(&self, id: u64, payload: &str, attempt: u32, fault: &str) {
        self.stats.dead_lettered.fetch_add(1, Ordering::SeqCst);
        let post_mortem = QuarantineRecord {
            id,
            payload: payload.to_string(),
            faults: attempt,
            last_fault: fault.to_string(),
        };
        let path = self
            .config
            .dir
            .join("quarantine")
            .join(format!("job-{id}.json"));
        if let Ok(json) = serde_json::to_string_pretty(&post_mortem) {
            let _ = write_atomic(&path, format!("{json}\n").as_bytes());
        }
        let _ = self.queue.transition(
            id,
            JobState::DeadLettered,
            attempt,
            None,
            Some(fault.to_string()),
            None,
        );
    }

    /// Writes `status.json` atomically: folded per-job lifecycle states
    /// plus the counter snapshot.
    fn write_status(&self) {
        let Ok(jobs) = self.queue.fold() else { return };
        let status = ServerStatus {
            stats: self.stats.snapshot(),
            jobs: jobs.into_values().collect(),
        };
        if let Ok(json) = serde_json::to_string_pretty(&status) {
            let _ = write_atomic(
                &self.config.dir.join("status.json"),
                format!("{json}\n").as_bytes(),
            );
        }
    }

    fn write_pidfile(&self) {
        let _ = write_atomic(
            &self.config.dir.join("campaignd.pid"),
            format!("{}\n", std::process::id()).as_bytes(),
        );
    }
}

/// Maps a campaign outcome to its terminal job state, digest, and
/// rendered report (diagnosed outcomes only).
fn classify(
    program: &Arc<Program>,
    outcome: &CampaignOutcome,
) -> (JobState, String, Option<String>) {
    match outcome {
        CampaignOutcome::Complete(d) => {
            let text = report::render(program, &d.failing, &d.result);
            (JobState::Complete, report_digest(&text), Some(text))
        }
        CampaignOutcome::Partial(p) => {
            let text = report::render(program, &p.diagnosis.failing, &p.diagnosis.result);
            (JobState::Partial, report_digest(&text), Some(text))
        }
        CampaignOutcome::NoReproduction { .. } => {
            (JobState::NoReproduction, NO_REPRO_DIGEST.to_string(), None)
        }
    }
}

/// The digest the server records for a diagnosis: a 64-bit hash of the
/// rendered report, hex-encoded. Tests compare it against the digest of a
/// direct single-campaign run to prove bit-identical outcomes.
#[must_use]
pub fn report_digest(text: &str) -> String {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    text.hash(&mut h);
    format!("{:016x}", h.finish())
}

/// Writes `bytes` to `path` atomically (temp file + rename) so readers
/// never observe a half-written file.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::builder::{
        cond_reg,
        ProgramBuilder, //
    };
    use ksim::CmpOp;

    /// The Figure 1 use-after-free race as a resolvable program.
    fn fig1() -> Arc<Program> {
        let mut p = ProgramBuilder::new("fig1");
        let obj = p.static_obj("obj", 8);
        let ptr_valid = p.global("ptr_valid", 0);
        let ptr = p.global_ptr("ptr", obj);
        {
            let mut a = p.syscall_thread("A", "write");
            a.n("A1").store_global(ptr_valid, 1u64);
            a.n("A2").load_global("r0", ptr);
            a.load_ind("r1", "r0", 0);
            a.ret();
        }
        {
            let mut b = p.syscall_thread("B", "write");
            let out = b.new_label();
            b.n("B1").load_global("r0", ptr_valid);
            b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
            b.n("B2").store_global(ptr, 0u64);
            b.place(out);
            b.ret();
        }
        Arc::new(p.build().unwrap())
    }

    /// Resolves `fig1` payloads; panics on `poison:` payloads; errors on
    /// anything else.
    struct TestResolver;

    impl JobResolver for TestResolver {
        fn resolve(&self, payload: &str) -> Result<ResolvedJob, String> {
            if payload.starts_with("poison:") {
                panic!("poison payload {payload} reached the pipeline");
            }
            if !payload.starts_with("fig1") {
                return Err(format!("unknown payload {payload}"));
            }
            Ok(ResolvedJob {
                program: fig1(),
                lifs: LifsConfig::default(),
                causality: CausalityConfig::default(),
                fault: None,
            })
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "aitia-server-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fast_config(dir: &Path, inflight: usize) -> ServerConfig {
        ServerConfig {
            drain: true,
            max_inflight: inflight,
            poll_ms: 5,
            backoff: RetryBackoff {
                base_ms: 1,
                max_ms: 4,
                seed: 1,
            },
            ..ServerConfig::at(dir)
        }
    }

    #[test]
    fn drains_jobs_to_complete_with_result_files_and_status() {
        let dir = temp_dir("drain");
        let server = CampaignServer::open(fast_config(&dir, 2), Arc::new(TestResolver)).unwrap();
        let a = server.submit("fig1#a").unwrap();
        let b = server.submit("fig1#b").unwrap();
        let stats = server.run();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.terminal(), 2);
        let jobs = server.jobs().unwrap();
        assert_eq!(jobs[&a].state, JobState::Complete);
        assert_eq!(
            jobs[&a].digest, jobs[&b].digest,
            "identical programs diagnose identically"
        );
        let report = std::fs::read_to_string(dir.join(format!("results/job-{a}.report.txt")))
            .expect("result file written");
        // The file is the rendered report plus one trailing newline (the
        // shape `diagnose --report-only` prints to stdout).
        let text = report.strip_suffix('\n').expect("trailing newline");
        assert_eq!(
            jobs[&a].digest.as_deref(),
            Some(report_digest(text).as_str())
        );
        assert!(dir.join("status.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poison_jobs_dead_letter_without_blocking_later_jobs() {
        let dir = temp_dir("poison");
        let server = CampaignServer::open(fast_config(&dir, 1), Arc::new(TestResolver)).unwrap();
        let poison = server.submit("poison:1").unwrap();
        let good = server.submit("fig1#after-poison").unwrap();
        let stats = server.run();
        assert_eq!(stats.dead_lettered, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.supervisor_faults, 3, "max_faults attempts consumed");
        assert_eq!(stats.retried, 2);
        let jobs = server.jobs().unwrap();
        assert_eq!(jobs[&poison].state, JobState::DeadLettered);
        assert_eq!(jobs[&good].state, JobState::Complete);
        assert!(
            dir.join(format!("quarantine/job-{poison}.json")).exists(),
            "quarantine post-mortem written"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolver_errors_count_as_faults_and_dead_letter() {
        let dir = temp_dir("resolver-err");
        let server = CampaignServer::open(fast_config(&dir, 1), Arc::new(TestResolver)).unwrap();
        let bad = server.submit("nonsense").unwrap();
        let stats = server.run();
        assert_eq!(stats.dead_lettered, 1);
        let jobs = server.jobs().unwrap();
        assert_eq!(jobs[&bad].state, JobState::DeadLettered);
        assert!(jobs[&bad]
            .detail
            .as_deref()
            .unwrap()
            .contains("unknown payload"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_resumes_non_terminal_jobs_to_identical_digests() {
        let dir = temp_dir("restart");
        // First incarnation: submit two jobs, run one to completion, and
        // leave the other mid-lifecycle (simulate by writing the records
        // a killed daemon would have left).
        let server = CampaignServer::open(fast_config(&dir, 1), Arc::new(TestResolver)).unwrap();
        let a = server.submit("fig1#a").unwrap();
        let b = server.submit("fig1#b").unwrap();
        let stats = server.run();
        assert_eq!(stats.completed, 2);
        let first = server.jobs().unwrap();
        drop(server);
        // Forge a crash: rewind job b to Running (as if SIGKILLed
        // mid-campaign) and restart.
        let queue = JobQueue::open(&dir).unwrap();
        queue
            .transition(b, JobState::Running, 0, None, None, None)
            .unwrap();
        drop(queue);
        let server = CampaignServer::open(fast_config(&dir, 1), Arc::new(TestResolver)).unwrap();
        assert_eq!(server.stats().resumed, 1);
        let stats = server.run();
        assert_eq!(stats.terminal(), 1, "only the resumed job re-ran");
        let second = server.jobs().unwrap();
        assert_eq!(second[&b].state, JobState::Complete);
        assert_eq!(
            second[&b].digest, first[&b].digest,
            "resumed diagnosis is bit-identical"
        );
        assert_eq!(second[&a].digest, first[&a].digest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_validation_rejects_nonsense_knobs() {
        let base = ServerConfig::at(temp_dir("validate"));
        assert!(base.validate().is_ok());
        for bad in [
            ServerConfig {
                max_inflight: 0,
                ..base.clone()
            },
            ServerConfig {
                total_vms: 0,
                ..base.clone()
            },
            ServerConfig {
                max_queued: 0,
                ..base.clone()
            },
            ServerConfig {
                max_faults: 0,
                ..base.clone()
            },
            ServerConfig {
                poll_ms: 0,
                ..base.clone()
            },
            ServerConfig {
                backoff: RetryBackoff {
                    base_ms: 100,
                    max_ms: 10,
                    seed: 0,
                },
                ..base.clone()
            },
            ServerConfig {
                wall_deadline_s: Some(-1.0),
                ..base.clone()
            },
            ServerConfig {
                sim_deadline_s: Some(f64::NAN),
                ..base.clone()
            },
        ] {
            assert!(bad.validate().is_err(), "accepted: {bad:?}");
        }
    }
}
