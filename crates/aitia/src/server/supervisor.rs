//! Supervision primitives for `campaignd`: deficit-round-robin fair-share
//! VM-slot allocation, seeded-jittered retry backoff, and panic-isolating
//! execution of untrusted campaign work.

use std::panic::{
    catch_unwind,
    AssertUnwindSafe, //
};
use std::time::Duration;

/// Deficit-round-robin fair sharing of one VM pool across concurrent
/// campaigns.
///
/// The pool holds `total` slots and up to `claimants` campaigns compete
/// for them. Each grant accrues `total` units of credit into an
/// accumulator and takes `accumulator / claimants` slots (at least one,
/// at most the free count), paying `claimants` units per slot taken. Over
/// any window of `claimants` consecutive grants the widths sum to
/// `total` — e.g. an 8-slot pool split three ways grants widths 2, 3, 3
/// — without ever granting zero (a campaign never starves) and without
/// fractional slots. A campaign holds its width for its whole lifetime;
/// diagnoses are worker-count-invariant, so the width never changes the
/// result, only the simulated cost.
#[derive(Debug)]
pub struct FairShare {
    total: usize,
    claimants: usize,
    free: usize,
    accumulator: usize,
}

impl FairShare {
    /// A pool of `total_vms` slots shared by up to `max_inflight`
    /// concurrent campaigns. Both are clamped to at least 1.
    #[must_use]
    pub fn new(total_vms: usize, max_inflight: usize) -> FairShare {
        let total = total_vms.max(1);
        FairShare {
            total,
            claimants: max_inflight.max(1),
            free: total,
            accumulator: 0,
        }
    }

    /// Slots currently unclaimed.
    #[must_use]
    pub fn free(&self) -> usize {
        self.free
    }

    /// Total slots in the pool.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Claims a width for one campaign, or `None` when the pool is
    /// exhausted (the caller blocks until a [`FairShare::release`]).
    pub fn grant(&mut self) -> Option<usize> {
        if self.free == 0 {
            return None;
        }
        self.accumulator += self.total;
        let ideal = self.accumulator / self.claimants;
        let width = ideal.max(1).min(self.free);
        // Pay for the slots actually taken; a grant clamped by `free`
        // keeps its unspent credit for the next round.
        self.accumulator = self.accumulator.saturating_sub(width * self.claimants);
        self.free -= width;
        Some(width)
    }

    /// Returns a campaign's slots to the pool.
    pub fn release(&mut self, width: usize) {
        self.free = (self.free + width).min(self.total);
    }
}

/// Deterministic, seeded-jittered, clamped exponential backoff for
/// re-queued jobs.
///
/// The delay for `(job, attempt)` is `min(base << attempt, max)` jittered
/// down by up to half via a hash of `(seed, job, attempt)` — so delays
/// are reproducible for a fixed seed (tests), differ across jobs (no
/// thundering herd), never busy-spin (at least 1 ms and at least half the
/// exponential step), and never sleep unbounded (clamped to `max_ms`).
#[derive(Clone, Copy, Debug)]
pub struct RetryBackoff {
    /// First-retry delay in milliseconds (clamped to at least 1).
    pub base_ms: u64,
    /// Delay ceiling in milliseconds (clamped to at least `base_ms`).
    pub max_ms: u64,
    /// Jitter seed; fixed seed ⇒ reproducible delays.
    pub seed: u64,
}

impl Default for RetryBackoff {
    fn default() -> Self {
        RetryBackoff {
            base_ms: 50,
            max_ms: 5_000,
            seed: 0xA17A,
        }
    }
}

impl RetryBackoff {
    /// The delay before retry number `attempt` (1-based: the first retry
    /// passes 1) of job `job`.
    #[must_use]
    pub fn delay(&self, job: u64, attempt: u32) -> Duration {
        let base = self.base_ms.max(1);
        let max = self.max_ms.max(base);
        let shift = attempt.saturating_sub(1).min(20);
        let step = base.saturating_mul(1 << shift).min(max);
        let lo = (step / 2).max(1);
        let span = step - lo;
        let jitter = if span == 0 {
            0
        } else {
            splitmix64(self.seed ^ job.rotate_left(17) ^ (u64::from(attempt) << 40)) % (span + 1)
        };
        Duration::from_millis((lo + jitter).min(max))
    }
}

/// SplitMix64 — the same tiny deterministic mixer the executor's fault
/// injection uses; good enough jitter with zero dependencies.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs campaign work with panic isolation: a panic anywhere inside `f`
/// (resolver, LIFS, causality, enforcement) becomes an `Err` with the
/// panic message instead of taking down the daemon. The supervisor counts
/// the fault and either re-queues or dead-letters the job.
///
/// # Errors
///
/// Returns the panic payload rendered as a string when `f` panics.
pub fn supervised<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_share_splits_eight_slots_three_ways_as_2_3_3() {
        let mut fs = FairShare::new(8, 3);
        let a = fs.grant().unwrap();
        let b = fs.grant().unwrap();
        let c = fs.grant().unwrap();
        let mut widths = [a, b, c];
        widths.sort_unstable();
        assert_eq!(widths, [2, 3, 3]);
        assert_eq!(fs.free(), 0);
        assert!(fs.grant().is_none(), "an exhausted pool grants nothing");
        fs.release(b);
        assert_eq!(fs.free(), b);
    }

    #[test]
    fn fair_share_never_grants_zero_and_never_overcommits() {
        for total in 1..=16usize {
            for claimants in 1..=12usize {
                let mut fs = FairShare::new(total, claimants);
                let mut granted = 0;
                while let Some(w) = fs.grant() {
                    assert!(w >= 1, "zero-width grant at {total}/{claimants}");
                    granted += w;
                }
                assert!(
                    granted <= total,
                    "overcommit: {granted} > {total} with {claimants} claimants"
                );
            }
        }
    }

    #[test]
    fn fair_share_more_claimants_than_slots_degrades_to_width_one() {
        let mut fs = FairShare::new(2, 8);
        assert_eq!(fs.grant(), Some(1));
        assert_eq!(fs.grant(), Some(1));
        assert_eq!(fs.grant(), None);
    }

    #[test]
    fn backoff_is_deterministic_clamped_and_varies_across_jobs() {
        let b = RetryBackoff {
            base_ms: 50,
            max_ms: 1_000,
            seed: 7,
        };
        for job in 0..32u64 {
            for attempt in 1..=12u32 {
                let d = b.delay(job, attempt);
                assert_eq!(d, b.delay(job, attempt), "deterministic");
                assert!(d >= Duration::from_millis(1), "never busy-spins");
                assert!(d <= Duration::from_millis(1_000), "never unbounded");
            }
        }
        // Jitter separates jobs at the same attempt (no thundering herd).
        let delays: std::collections::BTreeSet<_> = (0..16u64).map(|job| b.delay(job, 4)).collect();
        assert!(delays.len() > 1, "all jobs share one delay: no jitter");
        // Exponential growth until the clamp.
        assert!(b.delay(3, 6) >= b.delay(3, 1));
    }

    #[test]
    fn backoff_degenerate_knobs_are_clamped_not_panicking() {
        let b = RetryBackoff {
            base_ms: 0,
            max_ms: 0,
            seed: 0,
        };
        let d = b.delay(1, 30);
        assert!(d >= Duration::from_millis(1) && d <= Duration::from_millis(1));
    }

    #[test]
    fn supervised_catches_panics_with_their_message() {
        assert_eq!(supervised(|| 42), Ok(42));
        let err = supervised(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert!(err.contains("boom 7"), "got: {err}");
    }
}
