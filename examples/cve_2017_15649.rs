//! The paper's running example: CVE-2017-15649 (packet fanout).
//!
//! Reproduces Figures 2 and 6: a *multi-variable* race on the tightly
//! correlated pair `po->running` / `po->fanout`, a race-steered control
//! flow, a pending race past the failure point (`B17 ⇒ A12`), and the
//! four-race causality chain with a conjunction:
//!
//! ```text
//! (A2 ⇒ B11 ∧ B2 ⇒ A6) → A6 ⇒ B12 → B17 ⇒ A12 → BUG_ON()
//! ```
//!
//! ```text
//! cargo run --release --example cve_2017_15649
//! ```

use aitia_repro::aitia::{
    CausalityAnalysis,
    CausalityConfig,
    Lifs, //
};
use aitia_repro::corpus;

fn main() {
    let bug = corpus::cves()
        .into_iter()
        .find(|b| b.id == "CVE-2017-15649")
        .expect("corpus contains the CVE");
    println!("{}\n", bug.doc);

    // Build the model without noise so the walkthrough matches Figure 6
    // line for line; the benchmark harness runs the calibrated noisy
    // version.
    let program = bug.program(corpus::noise::NoiseSpec::silent());

    // The crash report (modeled): BUG in fanout_unlink. LIFS searches for
    // exactly that failure — the same code can also corrupt the fanout
    // list, which is a different bug.
    let search = Lifs::new(program.clone(), bug.lifs_config()).search();
    let run = search.failing.expect("reproduces");
    println!(
        "LIFS: reproduced `{}` at interleaving count {} after {} schedules",
        run.failure, search.stats.interleaving_count, search.stats.schedules_executed
    );
    println!("failure-causing instruction sequence:");
    let named: Vec<String> = run
        .trace
        .iter()
        .filter(|r| program.meta_at(r.at).is_some_and(|m| m.name.is_some()))
        .map(|r| program.instr_name(r.at))
        .collect();
    println!("  {}\n", named.join(" ⇒ "));

    // Causality Analysis, backward over the data races (Figure 6 steps).
    let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
    println!("Causality Analysis (backward):");
    for t in &result.tested {
        let (f, s) = t.race.key();
        println!(
            "  flip {:>4} ⇒ {:<4} → {:?}{}",
            program.instr_name(f),
            program.instr_name(s),
            t.verdict,
            if t.vanished.is_empty() {
                String::new()
            } else {
                format!("  (race-steered: {} race(s) vanished)", t.vanished.len())
            }
        );
    }
    println!("\ncausality chain: {}", result.chain);
    assert_eq!(result.chain.race_count(), 4);
    assert!(result.chain.to_string().contains('∧'));

    // The paper's point about wrong fixes: enforcing only B17 ⇒ A12 would
    // leave the concurrent fanout_link() corruption — the chain carries all
    // four orders a correct fix must consider.
}
