//! Quickstart: diagnose the paper's Figure 1 bug in ~30 lines.
//!
//! Two kernel paths communicate through a correlated flag/pointer pair;
//! under one specific interleaving the reader dereferences NULL. AITIA
//! reproduces the failure with LIFS and pinpoints the root cause as a
//! causality chain.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aitia_repro::aitia::{
    CausalityAnalysis,
    CausalityConfig,
    Lifs,
    LifsConfig, //
};
use aitia_repro::ksim::builder::{
    cond_reg,
    ProgramBuilder, //
};
use aitia_repro::ksim::CmpOp;
use std::sync::Arc;

fn main() {
    // Model the buggy kernel code (paper Figure 1).
    let mut p = ProgramBuilder::new("fig1");
    let obj = p.static_obj("obj", 8);
    let ptr_valid = p.global("ptr_valid", 0);
    let ptr = p.global_ptr("ptr", obj);
    {
        let mut a = p.syscall_thread("A", "write");
        a.n("A1").store_global(ptr_valid, 1u64); // ptr_valid = 1
        a.n("A2").load_global("r0", ptr);
        a.load_ind("r1", "r0", 0); // local = *ptr
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "write");
        let out = b.new_label();
        b.n("B1").load_global("r0", ptr_valid); // if (ptr_valid == 0)
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out); //     return;
        b.n("B2").store_global(ptr, 0u64); // ptr = NULL
        b.place(out);
        b.ret();
    }
    let program = Arc::new(p.build().expect("valid program"));

    // Step 1 — LIFS: reproduce the failure as a deterministic
    // failure-causing instruction sequence.
    let search = Lifs::new(Arc::clone(&program), LifsConfig::default()).search();
    let run = search.failing.expect("the race reproduces");
    println!(
        "reproduced: {} (interleaving count {}, {} schedules)",
        run.failure, search.stats.interleaving_count, search.stats.schedules_executed
    );

    // Step 2 — Causality Analysis: flip each data race and keep the ones
    // whose flip averts the failure.
    let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
    println!("causality chain: {}", result.chain);
    println!(
        "tested {} races, {} causal, {} benign",
        result.tested.len(),
        result.root_causes.len(),
        result.benign().len()
    );
    // The chain reads: A1 ⇒ B1 → B2 ⇒ A2 → NULL pointer dereference.
    // Breaking either link (locking, reordering) prevents the failure.
    assert_eq!(result.chain.race_count(), 2);
}
