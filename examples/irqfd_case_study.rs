//! The Figure 9 case study: bug #4, a use-after-free across a kernel
//! worker thread (KVM irqfd).
//!
//! Shows the full AITIA pipeline including the execution-history modeling
//! stage: a Syzkaller-style trace (two ioctls plus a kworker invocation,
//! with the fd-closure `open`/`close`) is sliced backward from the failure
//! (§4.2), and the slice's program is reproduced and diagnosed. The chain
//! crosses the thread boundary through the deferred work:
//!
//! ```text
//! A1 ⇒ B1 → K1 ⇒ A2 → use-after-free
//! ```
//!
//! ```text
//! cargo run --release --example irqfd_case_study
//! ```

use aitia_repro::aitia::{
    manager::{
        Manager,
        ManagerConfig, //
    },
    report,
};
use aitia_repro::corpus;
use aitia_repro::khist;

fn main() {
    let bug = corpus::syzkaller()
        .into_iter()
        .find(|b| b.id == "#4")
        .expect("corpus contains bug #4");
    println!("{}\n", bug.doc);

    // Stage 1 — modeling the execution history (§4.2): the trace from the
    // bug-finding system, rendered ftrace-style, then sliced.
    let history = bug.history();
    println!("{}", khist::ftrace::render(&history));
    let slices = khist::slices(&history);
    println!(
        "slicing: {} candidate slices (≤{} threads each); first: {:?}\n",
        slices.len(),
        khist::MAX_SLICE_THREADS,
        slices[0]
            .threads
            .iter()
            .map(khist::Entry::describe)
            .collect::<Vec<_>>()
    );
    assert!(slices[0]
        .threads
        .iter()
        .any(|t| matches!(t, khist::Entry::Kthread(_))));

    // Stage 2+3 — reproduce and diagnose. The manager runs reproducers /
    // diagnosers on a pool of simulated VMs (§4.1, §4.5); the first slice
    // corresponds to the modeled program.
    let program = bug.program(corpus::noise::NoiseSpec::silent());
    let manager = Manager::new(ManagerConfig {
        lifs: bug.lifs_config(),
        ..ManagerConfig::default()
    });
    let diagnosis = manager
        .diagnose_program(program.clone())
        .expect("reproduces");
    println!(
        "{}",
        report::render(&program, &diagnosis.failing, &diagnosis.result)
    );
    let chain = diagnosis.result.chain.to_string();
    assert!(chain.contains("A1 ⇒ B1"), "{chain}");
    assert!(chain.contains("K1 ⇒ A2"), "{chain}");
    // The inflection point alone (Kairux, §5.3) would name K1 and miss the
    // race-steered invocation of the worker — the chain carries both.
}
