//! The Figure 5 walkthrough: how Least Interleaving First Search explores.
//!
//! Prints the search tree for the paper's three-thread example — serial
//! orders first (interleaving count 0), then single preemptions front to
//! back, with partial-order-reduction skips — and shows the effect of
//! disabling the pruning (the ablation).
//!
//! ```text
//! cargo run --release --example lifs_search_tree
//! ```

use aitia_repro::aitia::{
    Lifs,
    LifsConfig,
    PruneLevel, //
};
use aitia_repro::corpus::figures;
use std::sync::Arc;

fn main() {
    let program = Arc::new(figures::fig5());
    println!("Figure 5 program: {}\n", program.name);

    let with_por = Lifs::new(Arc::clone(&program), LifsConfig::default()).search();
    println!("search tree (with partial-order reduction):");
    print!("{}", with_por.tree.render(&program));
    let run = with_por.failing.expect("reproduces");
    println!(
        "\nfailure: {} — reproduced at interleaving count {}",
        run.failure, with_por.stats.interleaving_count
    );
    println!(
        "schedules executed: {}, pruned (non-conflicting): {}, pruned (equivalent): {}",
        with_por.stats.schedules_executed,
        with_por.stats.pruned_nonconflicting,
        with_por.stats.pruned_equivalent
    );
    println!("failure-causing sequence:");
    let named: Vec<String> = run
        .trace
        .iter()
        .filter(|r| program.meta_at(r.at).is_some_and(|m| m.name.is_some()))
        .map(|r| program.instr_name(r.at))
        .collect();
    println!("  {}", named.join(" ⇒ "));

    // Ablations: the same search without any pruning, and with the full
    // DPOR sleep-set / persistent-set rules.
    let no_por = Lifs::new(
        Arc::clone(&program),
        LifsConfig {
            prune: PruneLevel::Off,
            ..LifsConfig::default()
        },
    )
    .search();
    println!(
        "\nwithout pruning: {} schedules (pruning saved {})",
        no_por.stats.schedules_executed,
        no_por
            .stats
            .schedules_executed
            .saturating_sub(with_por.stats.schedules_executed)
    );
    assert!(no_por.failing.is_some());
    assert!(no_por.stats.schedules_executed >= with_por.stats.schedules_executed);

    let dpor = Lifs::new(
        Arc::clone(&program),
        LifsConfig {
            prune: PruneLevel::Dpor,
            ..LifsConfig::default()
        },
    )
    .search();
    println!(
        "with full DPOR: {} schedules (sleep-set skips: {}, persistent-set skips: {})",
        dpor.stats.schedules_executed, dpor.stats.pruned_sleep_set, dpor.stats.pruned_persistent
    );
    assert!(dpor.failing.is_some());
    assert!(dpor.stats.schedules_executed <= with_por.stats.schedules_executed);
}
