//! Extension demo (§4.6): diagnosing a race between a system call and a
//! *hardware interrupt handler*.
//!
//! The paper leaves IRQ contexts as future work, noting that "AITIA is able
//! to diagnose such concurrent bugs if the AITIA hypervisor injects an IRQ
//! through the VT-x mechanism as is done for system calls". The simulator's
//! hypervisor-equivalent does exactly that: registered handlers become
//! interleaving targets, and switching to one at a scheduling point injects
//! the interrupt.
//!
//! ```text
//! cargo run --release --example irq_injection
//! ```

use aitia_repro::aitia::{
    CausalityAnalysis,
    CausalityConfig,
    Lifs,
    LifsConfig, //
};
use aitia_repro::corpus::figures;
use std::sync::Arc;

fn main() {
    // A driver write path fills a DMA buffer while `dev->busy` is set; the
    // completion interrupt tears the buffer down when it observes `busy`.
    // If the IRQ fires between the write path's buffer load and its store,
    // the store hits NULL.
    let program = Arc::new(figures::irq_scenario());

    let search = Lifs::new(Arc::clone(&program), LifsConfig::default()).search();
    let run = search
        .failing
        .expect("the injected IRQ reproduces the race");
    println!(
        "reproduced {} after {} schedules (interleaving count {})",
        run.failure, search.stats.schedules_executed, search.stats.interleaving_count
    );
    // The handler really ran as an injected context.
    let irq_steps = run
        .trace
        .iter()
        .filter(|r| program.instr_name(r.at).starts_with('I'))
        .count();
    println!("interrupt handler executed {irq_steps} instruction(s) in the failing run");
    assert!(irq_steps > 0);

    let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
    println!("causality chain: {}", result.chain);
    // The chain crosses the interrupt boundary.
    assert!(
        result.chain.to_string().contains("I2") || result.chain.to_string().contains("I1"),
        "chain must involve the handler"
    );
    println!("\nRCU bonus: the grace-period discipline proves a protected reader safe —");
    let safe = Lifs::new(Arc::new(figures::rcu_scenario(true)), LifsConfig::default()).search();
    let unsafe_ = Lifs::new(
        Arc::new(figures::rcu_scenario(false)),
        LifsConfig::default(),
    )
    .search();
    println!(
        "  rcu_read_lock()-protected reader: {} (after {} schedules)",
        if safe.failing.is_none() {
            "no failure exists"
        } else {
            "FAILED?"
        },
        safe.stats.schedules_executed
    );
    println!(
        "  unprotected reader:               {}",
        unsafe_
            .failing
            .map(|r| r.failure.to_string())
            .unwrap_or_else(|| "no failure".into())
    );
    assert!(safe.failing.is_none());
}
