//! The full AITIA pipeline over the whole Syzkaller corpus.
//!
//! For every Table 3 bug: take the modeled Syzkaller input (timestamped
//! syscall trace + coredump extract), slice the history backward from the
//! failure, reproduce with LIFS against the reported failure signature, run
//! Causality Analysis, and print the one-line causality chain — the
//! artifact a kernel developer receives.
//!
//! ```text
//! cargo run --release --example syzkaller_pipeline
//! ```

use aitia_repro::aitia::{
    CausalityAnalysis,
    CausalityConfig,
    Lifs, //
};
use aitia_repro::corpus;
use aitia_repro::khist;

fn main() {
    println!(
        "{:<5} {:<14} {:>7} {:>6} {:>7} {:>7}  chain",
        "bug", "subsystem", "slices", "LIFS#", "races", "benign"
    );
    for bug in corpus::syzkaller() {
        // Input: execution history + failure info from the bug finder.
        let history = bug.history();
        let slices = khist::slices(&history);
        assert!(!slices.is_empty(), "{}: trace must slice", bug.id);

        // Reproduce (small noise so the example runs in seconds; the bench
        // harness uses the full calibration).
        let program = bug.program_scaled(0.05);
        let search = Lifs::new(program, bug.lifs_config()).search();
        let run = search.failing.expect("every corpus bug reproduces");

        // Diagnose.
        let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        println!(
            "{:<5} {:<14} {:>7} {:>6} {:>7} {:>7}  {}",
            bug.id,
            bug.subsystem,
            slices.len(),
            search.stats.schedules_executed,
            result.tested.len(),
            result.benign().len(),
            result.chain
        );
        assert_eq!(result.chain.race_count(), bug.expected_chain_races);
    }
    println!("\nall 12 Syzkaller bugs diagnosed; chains match Table 3.");
}
