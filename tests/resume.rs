//! Crash-safety properties of the journaled campaign driver.
//!
//! The kill-and-resume contract: a campaign killed at ANY point — between
//! journal records or mid-append (a torn tail) — and relaunched over the
//! surviving journal produces a diagnosis bit-identical to an uninterrupted
//! campaign, at any worker count, with VM-fault injection on. And the
//! deadline contract: a budget that expires mid-analysis degrades to a
//! partial diagnosis whose un-flipped races are all `Unverified`, never
//! `Benign`.

use aitia_repro::aitia::{
    journal,
    manager::{
        Diagnosis,
        ManagerConfig, //
    },
    Campaign,
    CampaignOutcome,
    FaultInjection,
    Verdict, //
};
use aitia_repro::ksim::{
    builder::{
        cond_reg,
        ProgramBuilder, //
    },
    CmpOp, Program,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Figure 1 plus benign counter noise, built fresh per call — campaigns on
/// different `Arc`s share nothing through the identity-keyed memo table, so
/// every cross-campaign saving is attributable to the journal alone.
fn noisy_fig1() -> Arc<Program> {
    let mut p = ProgramBuilder::new("fig1-noise");
    let obj = p.static_obj("obj", 8);
    let ptr_valid = p.global("ptr_valid", 0);
    let ptr = p.global_ptr("ptr", obj);
    let stats_ctr = p.global("stats", 0);
    {
        let mut a = p.syscall_thread("A", "writer");
        a.fetch_add_global(stats_ctr, 1u64);
        a.n("A1").store_global(ptr_valid, 1u64);
        a.n("A2").load_global("r0", ptr);
        a.load_ind("r1", "r0", 0);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "clearer");
        let out = b.new_label();
        b.fetch_add_global(stats_ctr, 1u64);
        b.n("B1").load_global("r0", ptr_valid);
        b.jmp_if(cond_reg("r0", CmpOp::Eq, 0), out);
        b.n("B2").store_global(ptr, 0u64);
        b.place(out);
        b.ret();
    }
    Arc::new(p.build().unwrap())
}

/// Recovering VM faults: failures on early attempts, success on a retry, so
/// campaigns complete while the retry machinery stays exercised.
fn fault() -> FaultInjection {
    FaultInjection {
        seed: 11,
        rate_permille: 120,
        ..FaultInjection::default()
    }
}

fn config(vms: usize) -> ManagerConfig {
    ManagerConfig {
        vms,
        fault: Some(fault()),
        ..ManagerConfig::default()
    }
}

/// Everything diagnosis-facing, as one comparable string.
fn digest(d: &Diagnosis) -> String {
    let verdicts: Vec<Verdict> = d.result.tested.iter().map(|t| t.verdict).collect();
    format!(
        "slice={} chain={} verdicts={:?} sched={:?} steps={} lifs={} ca={}",
        d.slice_index,
        d.result.chain,
        verdicts,
        d.failing.schedule,
        d.failing.trace.len(),
        d.lifs_stats.schedules_executed,
        d.result.stats.schedules_executed,
    )
}

fn fresh_journal_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "aitia-resume-test-{}-{tag}-{}.wal",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Runs a journaled campaign at `vms` workers against `path`, returning its
/// diagnosis digest.
fn campaign_digest(path: &PathBuf, vms: usize) -> String {
    let campaign = Campaign::with_journal_path(config(vms), path);
    let outcome = campaign.diagnose_program(noisy_fig1());
    digest(outcome.diagnosis().expect("fig1 reproduces"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill at a record boundary anywhere in the journal, resume at 1/2/8
    /// workers: bit-identical diagnosis, no torn-tail repair needed.
    #[test]
    fn resume_from_any_record_boundary_is_bit_identical(keep_percent in 0usize..=100) {
        let path = fresh_journal_path("boundary");
        let reference = campaign_digest(&path, 1);
        let total = journal::record_count(&path).unwrap();
        prop_assert!(total > 0);
        let keep = total * keep_percent / 100;
        for vms in [1usize, 2, 8] {
            // Re-cut the journal for each worker count (the previous
            // resume re-filled it back to a full journal).
            journal::truncate_at_record(&path, keep).unwrap();
            prop_assert_eq!(journal::record_count(&path).unwrap(), keep);
            let resumed = campaign_digest(&path, vms);
            prop_assert_eq!(&resumed, &reference, "vms={} keep={}/{}", vms, keep, total);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Kill mid-append: tear the journal inside the final record. Open
    /// truncates the torn tail with a warning (never a panic), and the
    /// resumed diagnosis is still bit-identical.
    #[test]
    fn resume_from_a_torn_tail_is_bit_identical(tear in 1u64..24) {
        let path = fresh_journal_path("torn");
        let reference = campaign_digest(&path, 1);
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - tear)
            .unwrap();
        let campaign = Campaign::with_journal_path(config(2), &path);
        let outcome = campaign.diagnose_program(noisy_fig1());
        let resumed = digest(outcome.diagnosis().expect("fig1 reproduces"));
        prop_assert_eq!(&resumed, &reference, "tear={}", tear);
        let stats = campaign.journal_stats().expect("journal configured");
        prop_assert_eq!(stats.torn_tail_truncations, 1, "the tear was repaired");
        let _ = std::fs::remove_file(&path);
    }
}

/// A corrupt journal (garbage header) degrades to a cold start: full
/// re-execution, correct diagnosis, no panic.
#[test]
fn garbage_journal_degrades_to_cold_start() {
    let path = fresh_journal_path("garbage");
    let reference = campaign_digest(&path, 1);
    std::fs::write(&path, b"\x00\xffdefinitely not a journal\x17").unwrap();
    let campaign = Campaign::with_journal_path(config(1), &path);
    let outcome = campaign.diagnose_program(noisy_fig1());
    assert_eq!(
        digest(outcome.diagnosis().expect("fig1 reproduces")),
        reference
    );
    let stats = campaign.journal_stats().expect("journal configured");
    assert_eq!(stats.records_replayed, 0, "nothing to replay after reset");
    assert!(stats.records_appended > 0, "the campaign re-journaled");
    let _ = std::fs::remove_file(&path);
}

/// The degradation invariant at the campaign level: when a deadline expires
/// mid-analysis, the partial diagnosis marks every un-flipped race
/// `Unverified` — never `Benign` — and the outcome still carries the chain
/// built from what did run.
#[test]
fn deadline_partial_diagnosis_never_labels_unflipped_races_benign() {
    use aitia_repro::aitia::simtime::CostModel;
    // Probe the un-budgeted campaign to size a budget that covers LIFS
    // plus half a schedule, so the causality pass is cut mid-flight.
    // memo off: every run must execute (and so charge the budget)
    // regardless of what other tests put in the process-wide table.
    let base = ManagerConfig {
        vms: 1,
        memo: false,
        ..ManagerConfig::default()
    };
    let probe = Campaign::new(base.clone()).diagnose_program(noisy_fig1());
    let model = CostModel {
        vms: 1,
        ..CostModel::default()
    };
    let lifs_s = probe
        .diagnosis()
        .expect("fig1 reproduces")
        .lifs_stats
        .sim
        .seconds(&model);
    let outcome = Campaign::new(ManagerConfig {
        sim_deadline_s: Some(lifs_s + model.per_schedule_s * 0.5),
        ..base
    })
    .diagnose_program(noisy_fig1());
    let CampaignOutcome::Partial(p) = outcome else {
        panic!("expected a partial diagnosis, got {outcome:?}");
    };
    assert!(p.deadline_fired);
    assert!(p.unverified > 0, "some flips must have been cut off");
    for t in &p.diagnosis.result.tested {
        if t.outcome.is_none() {
            assert_eq!(
                t.verdict,
                Verdict::Unverified,
                "un-flipped race {:?} must stay a suspect",
                t.race.key()
            );
        }
    }
}
