//! Soak test for the `campaignd` server: a stream of generated-corpus
//! seeds (plus deliberately poisoned payloads) through
//! [`aitia::server::CampaignServer`] at 1, 2, and 8 workers with VM fault
//! injection on.
//!
//! The contract: every job reaches a terminal state, diagnoses are
//! bit-identical to direct single-campaign runs (and across worker
//! counts), and dead-lettered jobs never block the jobs submitted after
//! them.

use aitia_bench::experiments::CorpusJobResolver;
use aitia_repro::aitia::server::{
    report_digest,
    CampaignServer,
    JobResolver,
    JobState,
    RetryBackoff,
    ServerConfig,
    NO_REPRO_DIGEST, //
};
use aitia_repro::aitia::{
    manager::ManagerConfig,
    report,
    Campaign,
    CampaignOutcome,
    FaultInjection,
    Substrate, //
};
use std::collections::BTreeMap;
use std::path::{
    Path,
    PathBuf, //
};
use std::sync::Arc;

/// How many generated seeds the soak streams through each server.
const SEEDS: u64 = 50;

/// Recovering VM faults: failures on early attempts, success on a retry,
/// so campaigns complete while the retry machinery stays exercised.
fn fault() -> FaultInjection {
    FaultInjection {
        seed: 11,
        rate_permille: 120,
        ..FaultInjection::default()
    }
}

fn resolver() -> CorpusJobResolver {
    CorpusJobResolver {
        fault: Some(fault()),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("aitia-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn soak_config(dir: &Path, workers: usize) -> ServerConfig {
    ServerConfig {
        max_inflight: workers,
        drain: true,
        poll_ms: 5,
        backoff: RetryBackoff {
            base_ms: 1,
            max_ms: 4,
            seed: 9,
        },
        ..ServerConfig::at(dir)
    }
}

/// The digest a direct, single-campaign run of `payload` produces — the
/// reference every server run must match bit-for-bit.
fn direct_digest(payload: &str) -> String {
    let resolved = resolver().resolve(payload).expect("payload resolves");
    let campaign = Campaign::new(ManagerConfig {
        vms: 8,
        lifs: resolved.lifs,
        causality: resolved.causality,
        fault: resolved.fault,
        substrate: Substrate::private(4096, 64),
        ..ManagerConfig::default()
    });
    match campaign.diagnose_program(Arc::clone(&resolved.program)) {
        CampaignOutcome::Complete(d) => {
            report_digest(&report::render(&resolved.program, &d.failing, &d.result))
        }
        CampaignOutcome::Partial(p) => report_digest(&report::render(
            &resolved.program,
            &p.diagnosis.failing,
            &p.diagnosis.result,
        )),
        CampaignOutcome::NoReproduction { .. } => NO_REPRO_DIGEST.to_string(),
    }
}

#[test]
fn soak_fifty_seeds_at_one_two_and_eight_workers() {
    // Poison payloads interleave with the stream: two unknown payloads
    // (resolver error) submitted *before* most of the work, so a wedged
    // queue would starve everything behind them.
    let mut payloads: Vec<String> = vec!["poison:alpha".into()];
    payloads.extend((0..SEEDS).map(|s| format!("gen:{s}")));
    payloads.insert(SEEDS as usize / 2, "poison:beta".into());

    // Reference digests from direct single-campaign runs, computed once.
    let reference: BTreeMap<&str, String> = payloads
        .iter()
        .filter(|p| p.starts_with("gen:"))
        .map(|p| (p.as_str(), direct_digest(p)))
        .collect();

    let mut per_worker_digests: Vec<BTreeMap<String, String>> = Vec::new();
    for workers in [1usize, 2, 8] {
        let dir = temp_dir(&format!("w{workers}"));
        let server = CampaignServer::open(soak_config(&dir, workers), Arc::new(resolver()))
            .expect("server opens");
        for p in &payloads {
            server.submit(p).expect("soak submits fit the queue");
        }
        let stats = server.run();
        let jobs = server.jobs().expect("queue folds");

        // Every job reached a terminal state; nothing is stuck.
        assert_eq!(
            stats.terminal() as usize,
            payloads.len(),
            "{workers} workers: every job must be terminal"
        );
        assert!(
            jobs.values().all(|j| j.state.is_terminal()),
            "{workers} workers: non-terminal job in final fold"
        );

        // Poison jobs dead-letter with quarantine post-mortems and never
        // block the generated jobs behind them.
        let dead: Vec<_> = jobs
            .values()
            .filter(|j| j.state == JobState::DeadLettered)
            .collect();
        assert_eq!(dead.len(), 2, "{workers} workers: both poisons quarantined");
        for j in &dead {
            assert!(j.payload.starts_with("poison:"));
            assert!(
                dir.join(format!("quarantine/job-{}.json", j.id)).exists(),
                "{workers} workers: quarantine file for job {}",
                j.id
            );
        }
        assert_eq!(stats.dead_lettered, 2);

        // Diagnoses are bit-identical to direct single-campaign runs.
        let mut digests = BTreeMap::new();
        for j in jobs.values() {
            if !j.payload.starts_with("gen:") {
                continue;
            }
            let digest = j.digest.clone().expect("terminal generated job has digest");
            assert_eq!(
                &digest,
                &reference[j.payload.as_str()],
                "{workers} workers: {} diverged from the direct run",
                j.payload
            );
            digests.insert(j.payload.clone(), digest);
        }
        assert_eq!(digests.len(), SEEDS as usize);
        per_worker_digests.push(digests);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // And identical across worker counts (1 vs 2 vs 8).
    assert_eq!(per_worker_digests[0], per_worker_digests[1]);
    assert_eq!(per_worker_digests[0], per_worker_digests[2]);
}

#[test]
fn backpressure_rejects_past_the_bound_and_recovers_as_jobs_finish() {
    let dir = temp_dir("backpressure");
    let config = ServerConfig {
        max_queued: 4,
        ..soak_config(&dir, 2)
    };
    let server = CampaignServer::open(config, Arc::new(resolver())).expect("server opens");
    for s in 0..4u64 {
        server.submit(&format!("gen:{s}")).expect("under the bound");
    }
    assert!(
        server.submit("gen:99").is_err(),
        "fifth non-terminal job must be rejected"
    );
    assert_eq!(server.stats().rejected_full, 1);
    let stats = server.run();
    assert_eq!(stats.terminal(), 4);
    // Terminal jobs free admission slots: the rejected payload fits now.
    server.submit("gen:99").expect("bound freed after drain");
    let _ = std::fs::remove_dir_all(&dir);
}
