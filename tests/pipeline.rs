//! End-to-end integration: trace modeling → slicing → LIFS → Causality
//! Analysis → chain, across crates.

use aitia_repro::aitia::{
    manager::{
        Manager,
        ManagerConfig, //
    },
    CausalityAnalysis, CausalityConfig, Lifs,
};
use aitia_repro::corpus;
use aitia_repro::khist;

/// Every corpus bug's modeled trace slices, reproduces, and yields a chain
/// of the documented length with the documented failure kind.
#[test]
fn full_pipeline_over_the_corpus() {
    for bug in corpus::all_bugs() {
        // §4.2 — history modeling and slicing.
        let history = bug.history();
        assert!(history.failure.is_some(), "{}: failure info", bug.id);
        let slices = khist::slices(&history);
        assert!(!slices.is_empty(), "{}: no slices", bug.id);
        assert!(slices.iter().all(|s| s.width() <= 3));

        // §3.3 — reproduction (tiny noise: integration smoke, not bench).
        let program = bug.program_scaled(0.02);
        let search = Lifs::new(program, bug.lifs_config()).search();
        let run = search
            .failing
            .unwrap_or_else(|| panic!("{}: no reproduction", bug.id));
        assert_eq!(run.failure.kind, bug.kind, "{}", bug.id);

        // §3.4 — diagnosis.
        let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        assert_eq!(
            result.chain.race_count(),
            bug.expected_chain_races,
            "{}: {}",
            bug.id,
            result.chain
        );
    }
}

/// The parallel manager agrees with the sequential pipeline.
#[test]
fn manager_parallel_diagnosis_is_consistent() {
    let bug = corpus::cves()
        .into_iter()
        .find(|b| b.id == "CVE-2019-11486")
        .unwrap();
    let program = bug.program_scaled(0.02);
    let manager = Manager::new(ManagerConfig {
        vms: 4,
        lifs: bug.lifs_config(),
        ..ManagerConfig::default()
    });
    let d = manager.diagnose_program(program).expect("diagnoses");
    assert_eq!(d.result.chain.race_count(), bug.expected_chain_races);
}

/// Trace serialization round-trips through the ftrace JSONL format and
/// still slices identically.
#[test]
fn histories_roundtrip_through_jsonl() {
    for bug in corpus::all_bugs().iter().take(5) {
        let h = bug.history();
        let text = khist::ftrace::to_jsonl(&h).expect("serializes");
        let back = khist::ftrace::from_jsonl(&text).expect("parses");
        assert_eq!(h, back, "{}", bug.id);
        assert_eq!(khist::slices(&h).len(), khist::slices(&back).len());
    }
}

/// The chains never contain a race judged benign, on any corpus bug
/// (the §5.2 "causality chains do not contain any benign data race" check).
#[test]
fn chains_never_contain_benign_races() {
    for bug in corpus::all_bugs() {
        let program = bug.program_scaled(0.04);
        let run = Lifs::new(program, bug.lifs_config())
            .search()
            .failing
            .unwrap_or_else(|| panic!("{}: no reproduction", bug.id));
        let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        for benign in result.benign() {
            assert!(
                !result.chain.contains(benign.first.at, benign.second.at()),
                "{}: benign race in chain",
                bug.id
            );
        }
    }
}

/// Flipping any chain race (re-running its flip schedule) really averts the
/// original failure — the defining property of the root cause.
#[test]
fn chain_races_avert_failure_when_flipped() {
    use aitia_repro::aitia::causality::flip::plan_flip;
    use aitia_repro::aitia::enforce;
    for bug in corpus::cves().iter().take(4) {
        let program = bug.program_scaled(0.02);
        let run = Lifs::new(program, bug.lifs_config())
            .search()
            .failing
            .unwrap_or_else(|| panic!("{}: no reproduction", bug.id));
        let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        for race in &result.root_causes {
            let plan = plan_flip(&run, race, &run.races, true);
            let mut engine = aitia_repro::ksim::Engine::new(run.program.clone());
            let res = enforce::run(
                &mut engine,
                &plan.schedule,
                &aitia_repro::aitia::EnforceConfig::default(),
            );
            let averted = match &res.failure {
                None => true,
                Some(f) => !(f.kind == run.failure.kind && f.at == run.failure.at),
            };
            assert!(
                averted,
                "{}: flipping chain race {:?} did not avert",
                bug.id,
                race.key()
            );
        }
    }
}

/// The full input-to-chain pipeline: history → slices → resolver →
/// manager → chain, for a kthread bug and a two-syscall bug.
#[test]
fn diagnose_history_resolves_and_diagnoses() {
    use aitia_repro::aitia::manager::{
        Manager,
        ManagerConfig, //
    };
    use aitia_repro::corpus::CorpusResolver;
    for id in ["#4", "CVE-2017-2636"] {
        let bug = aitia_repro::corpus::all_bugs()
            .into_iter()
            .find(|b| b.id == id)
            .unwrap();
        let manager = Manager::new(ManagerConfig {
            lifs: bug.lifs_config(),
            ..ManagerConfig::default()
        });
        let resolver = CorpusResolver { scale: 0.02 };
        let d = manager
            .diagnose_history(&bug.history(), &resolver)
            .unwrap_or_else(|| panic!("{id}: pipeline diagnosis"));
        assert_eq!(
            d.result.chain.race_count(),
            bug.expected_chain_races,
            "{id}: {}",
            d.result.chain
        );
    }
}
