//! Backend conformance kit: every registered [`BackendKind`] must uphold
//! the `ExecBackend` contract documented in `aitia::backend`.
//!
//! Each test iterates [`BackendKind::ALL`], skipping kinds that are not
//! available in this build or on this host (printing the reason), so the
//! same suite proves `ksim` everywhere and additionally proves `kvm` on
//! machines with `/dev/kvm` and a `--features kvm` build. The checks are
//! the five module-level invariants: determinism, snapshot round-trip,
//! reboot-resets-everything, observed-access stability across snapshot
//! boundaries, and (via kind-keyed digests) snapshot affinity.

use aitia_repro::aitia::{BackendKind, ExecBackend};
use aitia_repro::corpus;
use aitia_repro::ksim;
use ksim::builder::ProgramBuilder;
use ksim::{Addr, Program, ThreadId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Hard cap on serial-run length; a conforming backend halts long before.
const MAX_STEPS: usize = 200_000;

/// Backends this build/host can actually boot, with a printed skip note
/// for the rest.
fn available_backends(test: &str) -> Vec<BackendKind> {
    BackendKind::ALL
        .into_iter()
        .filter(|kind| match kind.available() {
            Ok(()) => true,
            Err(why) => {
                eprintln!("{test}: skipping backend {kind}: {why}");
                false
            }
        })
        .collect()
}

/// A two-thread program with a lock, nonzero-initialized globals, and
/// cross-thread traffic — enough surface to exercise every trait method.
fn contract_program() -> Arc<Program> {
    let mut p = ProgramBuilder::new("conformance");
    let g = p.global("g", 7);
    let h = p.global("h", 0);
    let lock = p.lock("l");
    {
        let mut a = p.syscall_thread("A", "writer");
        a.lock(lock);
        a.load_global("r0", g);
        a.store_global(g, 1u64);
        a.unlock(lock);
        a.store_global(h, 2u64);
        a.ret();
    }
    {
        let mut b = p.syscall_thread("B", "reader");
        b.lock(lock);
        b.load_global("r1", g);
        b.unlock(lock);
        b.load_global("r2", h);
        b.ret();
    }
    Arc::new(p.build().unwrap())
}

/// Steps the lowest-id runnable thread until the machine halts or nothing
/// is runnable, returning the schedule actually executed.
fn run_serial(backend: &mut dyn ExecBackend) -> Vec<ThreadId> {
    let mut schedule = Vec::new();
    for _ in 0..MAX_STEPS {
        if backend.halted() {
            return schedule;
        }
        let Some(&tid) = backend.runnable().first() else {
            return schedule;
        };
        match backend.step(tid) {
            Ok(_) => schedule.push(tid),
            Err(ksim::EngineError::Halted) => return schedule,
            Err(e) => panic!("serial step of runnable {tid:?} failed: {e:?}"),
        }
    }
    panic!("serial run did not terminate within {MAX_STEPS} steps");
}

/// What a completed run must agree on across backends and across
/// snapshot/restore churn.
type RunDigest = (
    usize,
    Option<ksim::FailureKind>,
    BTreeSet<(ThreadId, Addr, ksim::AccessKind)>,
);

fn digest(backend: &dyn ExecBackend) -> RunDigest {
    (
        backend.trace().len(),
        backend.failure().map(|f| f.kind),
        backend.observed_accesses(),
    )
}

/// Invariant 2: a snapshot taken mid-run restores to bit-identical
/// observable state, and re-running the recorded suffix from the restore
/// point reproduces the original run exactly (invariant 1).
#[test]
fn snapshot_restore_round_trip_and_determinism() {
    for kind in available_backends("snapshot_restore_round_trip_and_determinism") {
        let mut backend = kind.boot(contract_program());
        // Execute a short prefix, checkpoint, then record the suffix.
        for _ in 0..3 {
            let tid = backend.runnable()[0];
            backend.step(tid).expect("prefix step");
        }
        let snap = backend.snapshot();
        let at_snap = digest(backend.as_ref());
        let mut suffix = Vec::new();
        while !backend.halted() {
            let Some(&tid) = backend.runnable().first() else {
                break;
            };
            backend.step(tid).expect("suffix step");
            suffix.push(tid);
        }
        let final_digest = digest(backend.as_ref());

        // Round-trip: restoring rewinds every observable to the
        // checkpoint.
        backend.restore(&snap);
        assert_eq!(digest(backend.as_ref()), at_snap, "{kind}: restore state");

        // Determinism: the same suffix from the same checkpoint is the
        // same run.
        for &tid in &suffix {
            backend.step(tid).expect("replayed suffix step");
        }
        assert_eq!(
            digest(backend.as_ref()),
            final_digest,
            "{kind}: replayed suffix diverged"
        );

        // Restoring twice (including from a cloned handle) stays stable.
        let clone = snap.clone();
        backend.restore(&snap);
        backend.restore(&clone);
        assert_eq!(
            digest(backend.as_ref()),
            at_snap,
            "{kind}: double restore drifted"
        );
    }
}

/// Invariant 1 at whole-run scope: booting twice and running the same
/// schedule yields the same digest.
#[test]
fn identical_schedules_are_identical_runs() {
    for kind in available_backends("identical_schedules_are_identical_runs") {
        let mut first = kind.boot(contract_program());
        let schedule = run_serial(first.as_mut());
        assert!(!schedule.is_empty(), "{kind}: no progress");
        let mut second = kind.boot(contract_program());
        for &tid in &schedule {
            match second.step(tid) {
                Ok(_) | Err(ksim::EngineError::Halted) => {}
                Err(e) => panic!("{kind}: replay step failed: {e:?}"),
            }
        }
        assert_eq!(
            digest(first.as_ref()),
            digest(second.as_ref()),
            "{kind}: two boots of the same schedule disagree"
        );
    }
}

/// Invariant 3: reboot discards every trace of the previous run and the
/// rebooted machine behaves exactly like a fresh boot.
#[test]
fn reboot_resets_everything() {
    for kind in available_backends("reboot_resets_everything") {
        let mut backend = kind.boot(contract_program());
        let fresh_runnable = backend.runnable();
        run_serial(backend.as_mut());
        assert!(!backend.trace().is_empty(), "{kind}: run made no progress");

        backend.reboot();
        assert_eq!(backend.trace().len(), 0, "{kind}: trace survived reboot");
        assert!(backend.failure().is_none(), "{kind}: failure survived");
        assert!(!backend.halted(), "{kind}: still halted after reboot");
        assert!(
            backend.observed_accesses().is_empty(),
            "{kind}: accesses survived reboot"
        );
        assert_eq!(
            backend.runnable(),
            fresh_runnable,
            "{kind}: rebooted runnable set differs from fresh boot"
        );

        // The rebooted machine runs like a fresh one.
        run_serial(backend.as_mut());
        let mut reference = kind.boot(contract_program());
        run_serial(reference.as_mut());
        assert_eq!(
            digest(backend.as_ref()),
            digest(reference.as_ref()),
            "{kind}: post-reboot run differs from a fresh boot's run"
        );
    }
}

/// Invariant 4: the observed-access set of a run is identical whether the
/// run executed straight through or through snapshot/restore churn at
/// every step.
#[test]
fn observed_accesses_stable_across_snapshot_boundaries() {
    for kind in available_backends("observed_accesses_stable_across_snapshot_boundaries") {
        let mut straight = kind.boot(contract_program());
        run_serial(straight.as_mut());
        let reference = digest(straight.as_ref());

        let mut churned = kind.boot(contract_program());
        for _ in 0..MAX_STEPS {
            if churned.halted() {
                break;
            }
            let Some(&tid) = churned.runnable().first() else {
                break;
            };
            // Snapshot, step, rewind, step again for real: the kept run
            // crosses a restore boundary before every single instruction.
            let snap = churned.snapshot();
            churned.step(tid).expect("probe step");
            churned.restore(&snap);
            churned.step(tid).expect("kept step");
        }
        assert_eq!(
            digest(churned.as_ref()),
            reference,
            "{kind}: snapshot churn changed the observed run"
        );
    }
}

/// Every Table 2 program runs serially to completion on every available
/// backend, and every backend agrees with the `ksim` reference digest —
/// the cross-substrate differential the diagnosis pipeline relies on.
#[test]
fn table2_serial_runs_pass_on_every_backend() {
    let kinds = available_backends("table2_serial_runs_pass_on_every_backend");
    for bug in corpus::cves() {
        let program = bug.program(corpus::noise::NoiseSpec::silent());
        let mut reference: Option<RunDigest> = None;
        for &kind in &kinds {
            let mut backend = kind.boot(Arc::clone(&program));
            let schedule = run_serial(backend.as_mut());
            assert!(!schedule.is_empty(), "{}: {kind}: no progress", bug.id);
            let d = digest(backend.as_ref());
            match &reference {
                None => reference = Some(d),
                Some(r) => assert_eq!(
                    &d, r,
                    "{}: backend {kind} disagrees with the reference serial run",
                    bug.id
                ),
            }
        }
    }
}
