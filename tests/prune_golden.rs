//! Golden-corpus regression for DPOR pruning: the exact number of
//! schedules LIFS executes per Table 2 bug, at every prune level.
//!
//! These numbers are a behavioural snapshot, not a performance budget:
//! any change to plan generation, the conflict relation, or the
//! sleep/persistent rules shows up here as a precise per-bug diff instead
//! of a silent search-order drift. Update the table deliberately when the
//! pruning semantics change — and only after the differential properties
//! in `properties.rs` confirm diagnoses are still identical across levels.
//!
//! The noise scale is small so the unpruned `off` search stays tractable
//! in debug builds; `BENCH_prune.json` covers the performance claim at
//! benchmark scale.

use aitia_repro::aitia::{Lifs, LifsConfig, PruneLevel};
use aitia_repro::corpus;

const SCALE: f64 = 0.02;

/// `(bug id, [schedules_executed at off, conflict, dpor])`.
const GOLDEN: &[(&str, [usize; 3])] = &[
    ("CVE-2019-11486", [35, 4, 3]),
    ("CVE-2019-6974", [60, 7, 3]),
    ("CVE-2018-12232", [51, 6, 3]),
    ("CVE-2017-15649", [13446, 66, 36]),
    ("CVE-2017-10661", [17, 4, 3]),
    ("CVE-2017-7533", [185, 12, 4]),
    ("CVE-2017-2671", [21, 4, 3]),
    ("CVE-2017-2636", [25, 6, 4]),
    ("CVE-2016-10200", [38, 7, 4]),
    ("CVE-2016-8655", [21, 4, 3]),
];

#[test]
fn schedules_executed_per_bug_and_level_match_golden() {
    let bugs = corpus::cves();
    assert_eq!(bugs.len(), GOLDEN.len(), "corpus and golden table differ");
    let mut actual = Vec::new();
    let mut diffs = Vec::new();
    for (bug, (gid, golden)) in bugs.iter().zip(GOLDEN) {
        assert_eq!(&bug.id, gid, "corpus order changed; regenerate the table");
        let mut got = [0usize; 3];
        for (slot, prune) in [PruneLevel::Off, PruneLevel::Conflict, PruneLevel::Dpor]
            .into_iter()
            .enumerate()
        {
            let out = Lifs::new(
                bug.program_scaled(SCALE),
                LifsConfig {
                    prune,
                    ..bug.lifs_config()
                },
            )
            .search();
            assert!(
                out.failing.is_some(),
                "{} did not reproduce at {prune} (scale {SCALE})",
                bug.id
            );
            got[slot] = out.stats.schedules_executed;
        }
        assert!(
            got[2] <= got[1] && got[1] <= got[0],
            "{}: pruning increased the schedule count: {got:?}",
            bug.id
        );
        if &got != golden {
            diffs.push(format!("{}: golden {golden:?}, actual {got:?}", bug.id));
        }
        actual.push(format!("    ({:?}, {got:?}),", bug.id));
    }
    assert!(
        diffs.is_empty(),
        "schedule counts drifted:\n{}\n\nfull regenerated table:\n{}",
        diffs.join("\n"),
        actual.join("\n")
    );
}
