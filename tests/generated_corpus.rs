//! Regression tests for the generative bug corpus (`corpus::generate`)
//! and the differential fuzz harness built on it.
//!
//! The golden table pins the manifests of the first eight seeds: the
//! generator is a *versioned artifact* — any change to its grammar, its
//! family builders, or the underlying random stream shows up here as a
//! precise per-seed diff instead of silently invalidating every recorded
//! reproducer seed. Update the table deliberately, and only together with
//! a regenerated `BENCH_corpus.json`.
//!
//! The matrix tests run a small pinned seed range through the full
//! 78-cell executor configuration matrix in-process — the same harness
//! `report fuzz` runs at 200-seed scale — asserting bit-identical
//! diagnosis digests and planted-race recall.

use aitia_bench::experiments::{
    bench_corpus,
    corpus_matrix,
    diagnose_generated,
    generated_digest, //
};
use aitia_repro::corpus::generate::{
    generate,
    generate_with,
    shrink,
    GenConfig, //
};
use aitia_repro::ksim::engine::Engine;
use aitia_repro::ksim::ThreadId;
use std::sync::Arc;

/// `(name, family, kind, target_func, planted pairs, total instrs)` for
/// the first eight seeds at default knobs.
const GOLDEN: &[(&str, &str, &str, &str, &str, usize)] = &[
    (
        "gen-lock-0",
        "lock",
        "UseAfterFree",
        "gen_guarded_read",
        "[(P0:8, P1:8), (P1:10, P0:11)]",
        29,
    ),
    (
        "gen-list-1",
        "list",
        "UseAfterFree",
        "gen_publish_path",
        "[(P0:12, P1:11), (P1:15, P0:15)]",
        34,
    ),
    (
        "gen-rcu-2",
        "rcu",
        "UseAfterFree",
        "gen_rcu_reader",
        "[(P1:8, P2:9), (P0:0, P1:13)]",
        29,
    ),
    (
        "gen-refcount-3",
        "refcount",
        "RefcountWarning",
        "gen_kref_get_path",
        "[(P0:9, P1:9), (P1:9, P0:13)]",
        26,
    ),
    (
        "gen-rcu-4",
        "rcu",
        "UseAfterFree",
        "gen_rcu_reader",
        "[(P1:12, P2:10), (P0:0, P1:16)]",
        39,
    ),
    (
        "gen-list-5",
        "list",
        "UseAfterFree",
        "gen_publish_path",
        "[(P1:9, P2:8), (P0:0, P1:13)]",
        34,
    ),
    (
        "gen-list-6",
        "list",
        "UseAfterFree",
        "gen_publish_path",
        "[(P1:10, P2:9), (P0:0, P1:14)]",
        38,
    ),
    (
        "gen-rcu-7",
        "rcu",
        "UseAfterFree",
        "gen_rcu_reader",
        "[(P1:11, P2:9), (P0:0, P1:15)]",
        35,
    ),
];

#[test]
fn generator_manifests_match_golden() {
    for (seed, &(name, family, kind, func, planted, instrs)) in GOLDEN.iter().enumerate() {
        let b = generate(seed as u64);
        assert_eq!(b.name, name);
        assert_eq!(b.family.tag(), family);
        assert_eq!(format!("{:?}", b.kind), kind);
        assert_eq!(b.target_func, func);
        assert_eq!(format!("{:?}", b.planted), planted, "seed {seed} planted");
        let total: usize = b.program.progs.iter().map(|p| p.instrs.len()).sum();
        assert_eq!(total, instrs, "seed {seed} program size");
    }
}

#[test]
fn generated_programs_pass_both_serial_orders() {
    // Planted-race invariant: the defect needs a preemption. Checked at
    // full noise here (the corpus unit tests sweep the silent variant).
    for seed in 0..24u64 {
        let bug = generate(seed);
        for order in [[0u32, 1u32], [1, 0]] {
            let mut e = Engine::new(Arc::clone(&bug.program));
            for &t in &order {
                e.run_to_completion(ThreadId(t));
            }
            let failure = e.run_all_serial();
            assert!(
                failure.is_none(),
                "seed {seed} ({}) fails serially in order {order:?}: {failure:?}",
                bug.name,
            );
        }
    }
}

#[test]
fn pinned_seeds_agree_across_the_full_matrix_with_recall() {
    // The same harness `report fuzz` runs, on a small pinned range: every
    // cell of prune x memo x claim x snapshot x workers (plus the adaptive
    // causality cells) must produce a bit-identical digest and the
    // reference chain must contain a planted pair at both causality
    // levels. BENCH_corpus.json covers the 200-seed claim in release mode.
    let b = bench_corpus(0, 4, None);
    assert_eq!(b.seeds, 4);
    assert_eq!(b.cells, 78);
    assert_eq!(b.reproduced, 4, "every pinned seed reproduces");
    assert_eq!(b.digest_agreements, 4, "matrix digests diverged");
    assert_eq!(b.recall_hits, 4, "planted race missing from a chain");
    assert_eq!(
        b.adaptive_recall_hits, 4,
        "planted race missing from an adaptive chain"
    );
    assert!(b.divergences.is_empty(), "{:?}", b.divergences);
    assert!(b.meets_corpus_gate);
}

#[test]
fn reference_cell_digest_is_stable_across_repeat_runs() {
    // Same seed, same cell, fresh pools: the digest is a pure function of
    // the program, not of pool state left behind by earlier runs.
    let bug = generate(11);
    let cells = corpus_matrix();
    let reference = cells[0];
    let first = {
        let out = diagnose_generated(
            &bug,
            &reference.executor(),
            reference.prune,
            reference.causality,
        );
        generated_digest(&bug.name, out.as_ref())
    };
    let second = {
        let out = diagnose_generated(
            &bug,
            &reference.executor(),
            reference.prune,
            reference.causality,
        );
        generated_digest(&bug.name, out.as_ref())
    };
    assert!(!first.ends_with("no-repro"), "seed 11 must reproduce");
    assert_eq!(first, second);
}

#[test]
fn shrinking_preserves_the_planted_structure() {
    // A shrunk config regenerates the same family, failure class, and
    // racing variables — only noise and filler shrink, so a reproducer
    // seed stays meaningful at any ladder rung.
    let base = GenConfig::new(5);
    let full = generate_with(base);
    let min = shrink(&base, |c| {
        let b = generate_with(*c);
        b.family == full.family && b.kind == full.kind
    });
    assert_eq!(min.seed, base.seed);
    assert_eq!(min.noise_scale, 0.0);
    assert_eq!(min.max_filler, 0);
    let shrunk = generate_with(min);
    assert_eq!(shrunk.family, full.family);
    assert_eq!(shrunk.kind, full.kind);
    assert_eq!(shrunk.racing_vars, full.racing_vars);
    // And the shrunk program still reproduces with its planted race in
    // the chain on the reference cell.
    let cells = corpus_matrix();
    let out = diagnose_generated(
        &shrunk,
        &cells[0].executor(),
        cells[0].prune,
        cells[0].causality,
    )
    .expect("shrunk program still reproduces");
    assert!(shrunk.planted_in_chain(&out.1.chain));
}
