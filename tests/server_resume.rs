//! Kill-and-restart properties of the `campaignd` queue.
//!
//! The crash-recovery contract: SIGKILL the daemon at ANY point in the
//! queue file's history — modeled as truncating `queue.wal` to a record
//! prefix (25/50/75% of records) plus an optional byte-level torn tail —
//! then restart and replay the submit list (submits are idempotent by
//! payload). Zero jobs are lost, every job reaches a terminal state, no
//! torn tail ever panics, and every diagnosis is bit-identical to the
//! uninterrupted run's.

use aitia_bench::experiments::CorpusJobResolver;
use aitia_repro::aitia::server::{
    CampaignServer,
    JobQueue,
    RetryBackoff,
    ServerConfig, //
};
use aitia_repro::aitia::FaultInjection;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{
    Path,
    PathBuf, //
};
use std::sync::Arc;

/// Recovering VM faults, as in `tests/resume.rs`: the retry machinery
/// stays exercised while campaigns still complete.
fn resolver() -> CorpusJobResolver {
    CorpusJobResolver {
        fault: Some(FaultInjection {
            seed: 11,
            rate_permille: 120,
            ..FaultInjection::default()
        }),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("aitia-server-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> ServerConfig {
    ServerConfig {
        max_inflight: 2,
        drain: true,
        poll_ms: 5,
        backoff: RetryBackoff {
            base_ms: 1,
            max_ms: 4,
            seed: 3,
        },
        ..ServerConfig::at(dir)
    }
}

/// Terminal digests by payload from a folded queue.
fn digests_by_payload(server: &CampaignServer) -> BTreeMap<String, String> {
    server
        .jobs()
        .expect("queue folds")
        .values()
        .map(|j| {
            (
                j.payload.clone(),
                j.digest.clone().expect("terminal job has digest"),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Truncate the queue to 25/50/75% of its records (± an extra torn
    /// partial frame), restart, replay the submits, and drain: zero lost
    /// jobs and bit-identical digests.
    #[test]
    fn killed_queue_recovers_to_identical_digests(
        percent_idx in 0usize..3,
        tear in 0u64..12,
        seed_base in 0u64..500,
    ) {
        let percent = [25usize, 50, 75][percent_idx];
        let payloads: Vec<String> =
            (seed_base..seed_base + 8).map(|s| format!("gen:{s}")).collect();
        let dir = temp_dir(&format!("p{percent}-t{tear}-s{seed_base}"));

        // Uninterrupted reference run.
        let server = CampaignServer::open(config(&dir), Arc::new(resolver()))
            .expect("server opens");
        for p in &payloads {
            server.submit(p).expect("submits fit");
        }
        let stats = server.run();
        prop_assert_eq!(stats.terminal() as usize, payloads.len());
        let reference = digests_by_payload(&server);
        drop(server);

        // SIGKILL at an arbitrary queue position: keep a prefix of
        // records, then (optionally) tear bytes off the last surviving
        // frame so the tail is mid-append garbage.
        let total = JobQueue::record_count(&dir).expect("record count");
        let keep = (total * percent) / 100;
        JobQueue::truncate_at_record(&dir, keep).expect("truncate");
        if tear > 0 {
            let path = dir.join("queue.wal");
            let len = std::fs::metadata(&path).expect("metadata").len();
            if len > tear + 12 {
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .expect("open queue file")
                    .set_len(len - tear)
                    .expect("tear tail");
            }
        }

        // Restart: recovery must never panic on the torn tail, a replayed
        // submit list must restore every lost job (idempotently — jobs
        // whose Submit survived keep their id), and the drain must land
        // every payload on the reference digest. Journals surviving under
        // journals/ make resumed campaigns replay rather than re-run.
        let server = CampaignServer::open(config(&dir), Arc::new(resolver()))
            .expect("recovery opens");
        for p in &payloads {
            server.submit(p).expect("idempotent resubmit");
        }
        server.run();
        let recovered = digests_by_payload(&server);
        prop_assert_eq!(recovered.len(), payloads.len(), "a job was lost");
        for p in &payloads {
            prop_assert_eq!(
                &recovered[p], &reference[p],
                "{} diverged after crash recovery", p
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A torn tail alone (no record loss) must truncate cleanly and leave
/// every surviving record intact — the daemon never wedges on its own
/// mid-append crash.
#[test]
fn torn_tail_truncates_to_last_good_record_and_queue_keeps_working() {
    let dir = temp_dir("torn-only");
    {
        let queue = JobQueue::open(&dir).expect("queue opens");
        for s in 0..4u64 {
            queue.submit(&format!("gen:{s}"), 16).expect("submit");
        }
    }
    let path = dir.join("queue.wal");
    let len = std::fs::metadata(&path).expect("metadata").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open")
        .set_len(len - 5)
        .expect("tear");
    let queue = JobQueue::open(&dir).expect("reopen never panics");
    assert_eq!(queue.truncations(), 1, "tail repaired exactly once");
    let jobs = queue.fold().expect("fold");
    assert_eq!(jobs.len(), 3, "only the torn record is lost");
    assert_eq!(queue.submit("gen:3", 16).expect("resubmit"), 4);
    let _ = std::fs::remove_dir_all(&dir);
}
