//! Figure-for-figure assertions against the paper.

use aitia_repro::aitia::{
    lifs::tree::NodeOutcome, CausalityAnalysis, CausalityConfig, Lifs, LifsConfig, Verdict,
};
use aitia_repro::corpus::figures;
use std::sync::Arc;

/// Figure 5: serial orders first, then count-1 preemptions; the failure
/// reproduces at interleaving count 1 via the A1 preemption; non-conflicting
/// and equivalent candidates are pruned.
#[test]
fn fig5_search_order_matches_paper() {
    let prog = Arc::new(figures::fig5());
    let out = Lifs::new(Arc::clone(&prog), LifsConfig::default()).search();
    let nodes = &out.tree.nodes;
    // Orders 1 and 2: the serial executions, no failure.
    assert_eq!(nodes[0].interleavings, 0);
    assert_eq!(nodes[1].interleavings, 0);
    assert_eq!(nodes[0].outcome, NodeOutcome::NoFailure);
    assert_eq!(nodes[1].outcome, NodeOutcome::NoFailure);
    // The failure reproduces at interleaving count 1.
    let fail = nodes
        .iter()
        .find(|n| n.outcome == NodeOutcome::Failure)
        .expect("failure node");
    assert_eq!(fail.interleavings, 1);
    // The failing preemption is thread A at A1 switching to B (search
    // order 4's A1(m1) ⇒ B1(m1) in the paper).
    let desc = &fail.plan[0];
    assert_eq!(prog.instr_name(desc.at), "A1");
    // Pruned nodes exist (the grey paths / "skip (eqv.)" nodes).
    assert!(out.stats.pruned_nonconflicting + out.stats.pruned_equivalent > 0);
}

/// Figure 5's failing sequence is the paper's: A1 ⇒ B1 ⇒ B2 ⇒ (B3) ⇒ K1 ⇒
/// A2 ⇒ A3 — in particular K runs after B finishes and before A resumes.
#[test]
fn fig5_failing_sequence_interleaves_k_before_a_resumes() {
    let prog = Arc::new(figures::fig5());
    let run = Lifs::new(Arc::clone(&prog), LifsConfig::default())
        .search()
        .failing
        .expect("reproduces");
    let named: Vec<String> = run
        .trace
        .iter()
        .filter(|r| prog.meta_at(r.at).is_some_and(|m| m.name.is_some()))
        .map(|r| prog.instr_name(r.at))
        .collect();
    let pos = |n: &str| named.iter().position(|x| x == n);
    let (a1, b1, b3, k1, a3) = (
        pos("A1").expect("A1"),
        pos("B1").expect("B1"),
        pos("B3").expect("B3"),
        pos("K1").expect("K1"),
        pos("A3").expect("A3"),
    );
    assert!(a1 < b1, "{named:?}");
    assert!(b1 < b3, "{named:?}");
    assert!(b3 < k1, "{named:?}");
    assert!(k1 < a3, "{named:?}");
}

/// Figure 1 + Figure 3: the chain is `A1 ⇒ B1 → B2 ⇒ A2 → NULL deref` with
/// a race-steered causality edge between the links.
#[test]
fn fig1_chain_and_edge() {
    let prog = Arc::new(figures::fig1());
    let run = Lifs::new(Arc::clone(&prog), LifsConfig::default())
        .search()
        .failing
        .expect("reproduces");
    let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
    let s = res.chain.to_string();
    assert!(s.starts_with("A1 ⇒ B1"), "{s}");
    assert!(s.contains("→"), "{s}");
    assert_eq!(res.edges.len(), 1, "{:?}", res.edges);
}

/// Figure 4: all three background-thread patterns reproduce with a chain
/// that includes a race against the background context.
#[test]
fn fig4_all_patterns_chain_through_background_threads() {
    for (name, prog, bg_thread) in [
        ("fig4a", figures::fig4a(), "kworker"),
        ("fig4b", figures::fig4b(), "rcu_cb"),
        ("fig4c", figures::fig4c(), "kworker"),
    ] {
        let prog = Arc::new(prog);
        let run = Lifs::new(Arc::clone(&prog), LifsConfig::default())
            .search()
            .failing
            .unwrap_or_else(|| panic!("{name} reproduces"));
        let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        let bg_prog = prog
            .progs
            .iter()
            .position(|p| p.name == bg_thread)
            .expect("background program");
        let in_chain = res.chain.nodes.iter().any(|n| {
            n.races()
                .iter()
                .any(|r| r.first.prog.0 as usize == bg_prog || r.second.prog.0 as usize == bg_prog)
        });
        assert!(in_chain, "{name}: chain {} misses {bg_thread}", res.chain);
    }
}

/// Figure 7: both variants, with the verdict split the paper describes —
/// ambiguous when the nested race is causal, decidable when it is benign.
#[test]
fn fig7_verdicts() {
    let check = |prog: ksim::Program, expect_ambiguous: bool| {
        let prog = Arc::new(prog);
        let run = Lifs::new(Arc::clone(&prog), LifsConfig::default())
            .search()
            .failing
            .expect("reproduces");
        let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
        assert_eq!(
            !res.ambiguous().is_empty(),
            expect_ambiguous,
            "chain {} verdicts {:?}",
            res.chain,
            res.tested
                .iter()
                .map(|t| (t.race.key(), t.verdict))
                .collect::<Vec<_>>()
        );
        if expect_ambiguous {
            // The nested race is causal and in the chain.
            assert!(res.tested.iter().any(|t| t.verdict == Verdict::Causal));
        }
    };
    check(figures::fig7_ambiguous(), true);
    check(figures::fig7_clear(), false);
}

/// The CVE-2017-15649 walkthrough of Figure 6: four causal races, the
/// multi-variable conjunction, and the pending `B17 ⇒ A12` link.
#[test]
fn fig6_full_walkthrough() {
    let bug = aitia_repro::corpus::cves()
        .into_iter()
        .find(|b| b.id == "CVE-2017-15649")
        .unwrap();
    let prog = bug.program(aitia_repro::corpus::noise::NoiseSpec::silent());
    let run = Lifs::new(Arc::clone(&prog), bug.lifs_config())
        .search()
        .failing
        .expect("reproduces");
    // The pending race is in the test set: its second end is A12, never
    // executed in the failing run.
    let pending = run
        .races
        .iter()
        .find(|r| matches!(r.second, aitia_repro::aitia::RaceEnd::Pending { .. }))
        .expect("pending race (B17 ⇒ A12)");
    assert_eq!(prog.instr_name(pending.second.at()), "A12");
    let res = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
    let s = res.chain.to_string();
    for expected in [
        "A2 ⇒ B11",
        "B2 ⇒ A6",
        "A6 ⇒ B12",
        "B17 ⇒ A12",
        "∧",
        "BUG_ON",
    ] {
        assert!(s.contains(expected), "chain {s} missing {expected}");
    }
}
