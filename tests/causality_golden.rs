//! Golden-corpus regression for adaptive causal intervention: the exact
//! number of flip schedules Causality Analysis charges per Table 2 bug, at
//! both causality levels, plus the number of flips the static prover
//! discharged without execution.
//!
//! These numbers are a behavioural snapshot, not a performance budget: any
//! change to the flip geometry, the static proof obligations, or the gain
//! ordering shows up here as a precise per-bug diff instead of a silent
//! drift. Update the table deliberately when the intervention semantics
//! change — and only after the differential properties in `properties.rs`
//! confirm diagnoses are still identical across levels.
//!
//! The noise scale is small so debug-build flip batches stay fast;
//! `BENCH_causality.json` covers the performance claim at benchmark scale.

use aitia_repro::aitia::{CausalityAnalysis, CausalityConfig, CausalityLevel, Lifs};
use aitia_repro::corpus;

const SCALE: f64 = 0.02;

/// `(bug id, [flip schedules at exhaustive, at adaptive, static skips])`.
const GOLDEN: &[(&str, [usize; 3])] = &[
    ("CVE-2019-11486", [5, 4, 1]),
    ("CVE-2019-6974", [12, 12, 0]),
    ("CVE-2018-12232", [9, 4, 5]),
    ("CVE-2017-15649", [9, 8, 1]),
    ("CVE-2017-10661", [11, 9, 2]),
    ("CVE-2017-7533", [16, 4, 12]),
    ("CVE-2017-2671", [5, 4, 1]),
    ("CVE-2017-2636", [8, 8, 0]),
    ("CVE-2016-10200", [6, 5, 1]),
    ("CVE-2016-8655", [7, 6, 1]),
];

#[test]
fn flip_schedules_per_bug_and_level_match_golden() {
    let bugs = corpus::cves();
    assert_eq!(bugs.len(), GOLDEN.len(), "corpus and golden table differ");
    let mut actual = Vec::new();
    let mut diffs = Vec::new();
    for (bug, (gid, golden)) in bugs.iter().zip(GOLDEN) {
        assert_eq!(&bug.id, gid, "corpus order changed; regenerate the table");
        let run = Lifs::new(bug.program_scaled(SCALE), bug.lifs_config())
            .search()
            .failing
            .unwrap_or_else(|| panic!("{} did not reproduce at scale {SCALE}", bug.id));
        let mut got = [0usize; 3];
        let mut chains = Vec::new();
        for (slot, level) in [CausalityLevel::Exhaustive, CausalityLevel::Adaptive]
            .into_iter()
            .enumerate()
        {
            let result = CausalityAnalysis::new(CausalityConfig {
                level,
                ..CausalityConfig::default()
            })
            .analyze(&run);
            got[slot] = result.stats.schedules_executed;
            if slot == 1 {
                got[2] = result.stats.flips_skipped_static;
            }
            chains.push((
                result.chain.to_string(),
                result.tested.iter().map(|t| t.verdict).collect::<Vec<_>>(),
            ));
        }
        assert_eq!(
            chains[0], chains[1],
            "{}: causality levels disagreed on the diagnosis",
            bug.id
        );
        assert_eq!(
            got[0],
            got[1] + got[2],
            "{}: every exhaustive flip must be either executed or statically proved",
            bug.id
        );
        if &got != golden {
            diffs.push(format!("{}: golden {golden:?}, actual {got:?}", bug.id));
        }
        actual.push(format!("    ({:?}, {got:?}),", bug.id));
    }
    assert!(
        diffs.is_empty(),
        "flip counts drifted:\n{}\n\nfull regenerated table:\n{}",
        diffs.join("\n"),
        actual.join("\n")
    );
}
