//! Property-based tests over the substrate and the algorithms.
//!
//! Random programs are generated from a small grammar (stores, loads,
//! counters, branches, locks over a handful of globals across two or three
//! threads) and the core invariants are checked:
//!
//! * engine determinism — the same schedule always yields the same trace;
//! * snapshot/restore — a restored engine replays identically;
//! * LIFS soundness — a reported failing schedule really fails on replay;
//! * Causality Analysis soundness — flipping a root-cause race averts the
//!   failure; benign races never enter the chain;
//! * race detection sanity — lock-protected conflicting accesses never
//!   count as races.

use aitia_repro::aitia::{
    causality::flip,
    enforce::{
        self,
        EnforceConfig, //
    },
    races_in_trace, BackendKind, CancelToken, CausalityAnalysis, CausalityConfig, CausalityLevel,
    ExecJob, Executor, ExecutorConfig, FaultInjection, Lifs, LifsConfig, PruneLevel, Schedule,
    ThreadSel, Verdict,
};
use aitia_repro::ksim::{
    builder::{
        cond_reg,
        ProgramBuilder, //
    },
    CmpOp, Engine, Program,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One generated instruction of the random-program grammar.
#[derive(Clone, Debug)]
enum GenOp {
    Store { var: u8, val: u8 },
    Load { var: u8 },
    FetchAdd { var: u8 },
    GuardedStore { guard: u8, var: u8, val: u8 },
    Locked { lock: u8, var: u8, val: u8 },
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0u8..4, 0u8..8).prop_map(|(var, val)| GenOp::Store { var, val }),
        (0u8..4).prop_map(|var| GenOp::Load { var }),
        (0u8..4).prop_map(|var| GenOp::FetchAdd { var }),
        (0u8..4, 0u8..4, 0u8..8).prop_map(|(guard, var, val)| GenOp::GuardedStore {
            guard,
            var,
            val
        }),
        (0u8..2, 0u8..4, 0u8..8).prop_map(|(lock, var, val)| GenOp::Locked { lock, var, val }),
    ]
}

fn gen_program() -> impl Strategy<Value = Vec<Vec<GenOp>>> {
    prop::collection::vec(prop::collection::vec(gen_op(), 1..8), 2..4)
}

fn build(threads: &[Vec<GenOp>]) -> Arc<Program> {
    let mut p = ProgramBuilder::new("generated");
    let vars: Vec<_> = (0..4).map(|i| p.global(&format!("v{i}"), 0)).collect();
    let locks: Vec<_> = (0..2).map(|i| p.lock(&format!("l{i}"))).collect();
    for (ti, ops) in threads.iter().enumerate() {
        let mut t = p.syscall_thread(&format!("T{ti}"), "gen");
        for op in ops {
            match op {
                GenOp::Store { var, val } => {
                    t.store_global(vars[*var as usize], u64::from(*val));
                }
                GenOp::Load { var } => {
                    t.load_global("r0", vars[*var as usize]);
                }
                GenOp::FetchAdd { var } => {
                    t.fetch_add_global(vars[*var as usize], 1u64);
                }
                GenOp::GuardedStore { guard, var, val } => {
                    let skip = t.new_label();
                    t.load_global("r1", vars[*guard as usize]);
                    t.jmp_if(cond_reg("r1", CmpOp::Ne, 0), skip);
                    t.store_global(vars[*var as usize], u64::from(*val));
                    t.place(skip);
                }
                GenOp::Locked { lock, var, val } => {
                    t.lock(locks[*lock as usize]);
                    t.store_global(vars[*var as usize], u64::from(*val));
                    t.unlock(locks[*lock as usize]);
                }
            }
        }
        t.ret();
    }
    Arc::new(p.build().expect("generated programs are well-formed"))
}

fn serial_schedule(program: &Program) -> Schedule {
    let sels = program
        .initial
        .iter()
        .map(|&p| ThreadSel::first(p))
        .collect();
    Schedule::serial(sels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same schedule yields the same trace, twice.
    #[test]
    fn engine_is_deterministic(threads in gen_program()) {
        let program = build(&threads);
        let schedule = serial_schedule(&program);
        let mut e1 = Engine::new(Arc::clone(&program));
        let mut e2 = Engine::new(Arc::clone(&program));
        let r1 = enforce::run(&mut e1, &schedule, &EnforceConfig::default());
        let r2 = enforce::run(&mut e2, &schedule, &EnforceConfig::default());
        prop_assert_eq!(r1.trace, r2.trace);
        prop_assert_eq!(r1.failure, r2.failure);
    }

    /// A snapshot taken before a run restores to an identical replay.
    #[test]
    fn snapshot_restore_replays(threads in gen_program()) {
        let program = build(&threads);
        let schedule = serial_schedule(&program);
        let mut e = Engine::new(Arc::clone(&program));
        let snap = e.snapshot();
        let r1 = enforce::run(&mut e, &schedule, &EnforceConfig::default());
        e.restore(&snap);
        let r2 = enforce::run(&mut e, &schedule, &EnforceConfig::default());
        prop_assert_eq!(r1.trace, r2.trace);
    }

    /// Lock-protected conflicting accesses never appear as data races.
    #[test]
    fn locked_accesses_never_race(threads in gen_program()) {
        // Restrict to locked stores on one variable plus arbitrary reads.
        let locked_only: Vec<Vec<GenOp>> = threads
            .iter()
            .map(|ops| {
                ops.iter()
                    .map(|op| match op {
                        GenOp::Store { var, val } | GenOp::GuardedStore { var, val, .. } => {
                            GenOp::Locked { lock: 0, var: *var, val: *val }
                        }
                        GenOp::FetchAdd { var } => GenOp::Locked { lock: 0, var: *var, val: 1 },
                        GenOp::Locked { var, val, .. } => GenOp::Locked { lock: 0, var: *var, val: *val },
                        other => other.clone(),
                    })
                    .collect()
            })
            .collect();
        let program = build(&locked_only);
        let mut e = Engine::new(Arc::clone(&program));
        let _ = enforce::run(&mut e, &serial_schedule(&program), &EnforceConfig::default());
        for race in races_in_trace(e.trace()) {
            // Reads may still race with... nothing: every write is locked,
            // so any conflicting pair has its write inside a critical
            // section; a read outside can still be concurrent with it only
            // if the read's thread never took the lock. Verify no
            // write-write races at all.
            let both_write = race.first.is_write
                && matches!(&race.second,
                    aitia_repro::aitia::RaceEnd::Executed(a) if a.is_write);
            prop_assert!(!both_write, "write-write race under a common lock");
        }
    }

    /// If LIFS reproduces a failure, replaying its schedule fails
    /// identically, and Causality Analysis produces a chain whose flips all
    /// avert the failure.
    #[test]
    fn lifs_and_causality_are_sound(threads in gen_program()) {
        let program = build(&threads);
        let out = Lifs::new(Arc::clone(&program), LifsConfig {
            max_interleavings: 2,
            max_schedules: 3_000,
            ..LifsConfig::default()
        }).search();
        if let Some(run) = out.failing {
            // Replay determinism.
            let mut e = Engine::new(Arc::clone(&program));
            let replay = enforce::run(&mut e, &run.schedule, &EnforceConfig::default());
            let rf = replay.failure.as_ref().expect("replay fails");
            prop_assert_eq!(rf.kind, run.failure.kind);
            prop_assert_eq!(rf.at, run.failure.at);

            // Causality soundness.
            let result = CausalityAnalysis::new(CausalityConfig::default()).analyze(&run);
            for benign in result.benign() {
                prop_assert!(!result.chain.contains(benign.first.at, benign.second.at()));
            }
            for race in &result.root_causes {
                let plan = flip::plan_flip(&run, race, &run.races, true);
                let mut e = Engine::new(Arc::clone(&program));
                let res = enforce::run(&mut e, &plan.schedule, &EnforceConfig::default());
                prop_assert!(
                    !res.outcome().is_inconclusive(),
                    "root-cause flip replay was inconclusive"
                );
                prop_assert!(
                    flip::failure_averted(&run.failure, &res),
                    "root-cause flip did not avert"
                );
            }
        }
    }
}

/// What the executor's canonical-order fold promises to keep invariant in
/// one full diagnosis: LIFS schedule and fault counts, the failing
/// schedule, and (when it fails) the chain, verdicts, and Causality
/// Analysis schedule count.
type DiagnosisDigest = (
    usize,
    usize,
    Option<Schedule>,
    Option<(String, Vec<Verdict>, usize)>,
);

/// A pool that really spawns `vms` OS threads even on a small host, so the
/// invariance checks exercise true concurrency everywhere.
fn threaded_pool(vms: usize) -> Arc<Executor> {
    faulty_threaded_pool(vms, None)
}

/// [`threaded_pool`] with deterministic VM-fault injection enabled.
fn faulty_threaded_pool(vms: usize, fault: Option<FaultInjection>) -> Arc<Executor> {
    memo_pool(vms, fault, true)
}

/// [`faulty_threaded_pool`] with the cross-run memo table and snapshot
/// forest switchable — `memo: false` is the A/B baseline every memoization
/// property compares against.
fn memo_pool(vms: usize, fault: Option<FaultInjection>, memo: bool) -> Arc<Executor> {
    Arc::new(Executor::with_config(ExecutorConfig {
        vms,
        os_threads: Some(vms),
        fault,
        memo,
        ..ExecutorConfig::default()
    }))
}

/// One full diagnosis (LIFS + Causality Analysis) through a shared pool of
/// `vms` workers, optionally under injected VM faults.
fn diagnose_at(
    program: &Arc<Program>,
    vms: usize,
    fault: Option<FaultInjection>,
) -> DiagnosisDigest {
    diagnose_with(program, vms, fault, true)
}

/// [`diagnose_at`] with memoization switchable.
fn diagnose_with(
    program: &Arc<Program>,
    vms: usize,
    fault: Option<FaultInjection>,
    memo: bool,
) -> DiagnosisDigest {
    let exec = memo_pool(vms, fault, memo);
    let out = Lifs::with_executor(
        Arc::clone(program),
        LifsConfig {
            max_interleavings: 2,
            max_schedules: 2_000,
            ..LifsConfig::default()
        },
        Arc::clone(&exec),
    )
    .search();
    let schedule = out.failing.as_ref().map(|r| r.schedule.clone());
    let analysis = out.failing.map(|run| {
        let result =
            CausalityAnalysis::with_executor(CausalityConfig::default(), exec).analyze(&run);
        let verdicts: Vec<Verdict> = result.tested.iter().map(|t| t.verdict).collect();
        (
            result.chain.to_string(),
            verdicts,
            result.stats.schedules_executed,
        )
    });
    (
        out.stats.schedules_executed,
        out.stats.faulted,
        schedule,
        analysis,
    )
}

proptest! {
    // Each case diagnoses three times (worker counts 1, 2, 8); keep the
    // case count small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The whole pipeline is deterministic in the pool size: chains,
    /// verdicts, failing schedules, and schedule counts are identical at
    /// 1, 2, and 8 workers.
    #[test]
    fn diagnosis_is_identical_across_worker_counts(threads in gen_program()) {
        let program = build(&threads);
        let serial = diagnose_at(&program, 1, None);
        for vms in [2usize, 8] {
            let pooled = diagnose_at(&program, vms, None);
            prop_assert_eq!(&serial, &pooled, "diverged at {} workers", vms);
        }
    }
}

proptest! {
    // Each case diagnoses three times; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Worker-count invariance survives deterministic fault injection:
    /// fault decisions key on job content and attempt number (never worker
    /// identity), and retries happen inside the owning worker before the
    /// result is published, so at a fixed seed the whole pipeline is still
    /// bit-identical at 1, 2, and 8 workers — even when retry budgets are
    /// exhausted or slots get quarantined along the way.
    #[test]
    fn faulty_diagnosis_is_identical_across_worker_counts(threads in gen_program()) {
        let fault = FaultInjection {
            seed: 0xA17A,
            rate_permille: 120,
            max_retries: 2,
            quarantine_after: 2,
        };
        let program = build(&threads);
        let serial = diagnose_at(&program, 1, Some(fault));
        for vms in [2usize, 8] {
            let pooled = diagnose_at(&program, vms, Some(fault));
            prop_assert_eq!(&serial, &pooled, "diverged at {} workers", vms);
        }
    }
}

proptest! {
    // Each case diagnoses four times (memo-off baseline plus memo-on at
    // three worker counts); keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Memoization is invisible to diagnosis: with the memo table and the
    /// snapshot forest enabled, chains, verdicts, failing schedules, and
    /// schedule counts match a memo-disabled run at 1, 2, and 8 workers —
    /// even though the memo side answers repeated schedules from one
    /// process-wide table shared across all its runs.
    #[test]
    fn memoized_diagnosis_is_bit_identical_to_memo_off(threads in gen_program()) {
        let program = build(&threads);
        let baseline = diagnose_with(&program, 1, None, false);
        for vms in [1usize, 2, 8] {
            let memoized = diagnose_with(&program, vms, None, true);
            prop_assert_eq!(&baseline, &memoized, "diverged at {} workers", vms);
        }
    }
}

proptest! {
    // Each case diagnoses four times; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Memoization stays invisible under injected VM faults: fault
    /// decisions are made strictly before the memo lookup, so a memo hit
    /// never masks a fault — retry, give-up, and quarantine accounting
    /// (and every diagnosis output) match the memo-disabled run at any
    /// worker count.
    #[test]
    fn memoized_faulty_diagnosis_is_bit_identical_to_memo_off(threads in gen_program()) {
        let fault = FaultInjection {
            seed: 0xA17A,
            rate_permille: 120,
            max_retries: 2,
            quarantine_after: 2,
        };
        let program = build(&threads);
        let baseline = diagnose_with(&program, 1, Some(fault), false);
        for vms in [1usize, 2, 8] {
            let memoized = diagnose_with(&program, vms, Some(fault), true);
            prop_assert_eq!(&baseline, &memoized, "diverged at {} workers", vms);
        }
    }
}

/// What DPOR pruning must keep invariant across levels: the first failing
/// schedule and the full downstream diagnosis (chain, verdicts, Causality
/// Analysis schedule count). LIFS schedule counts are deliberately
/// excluded — executing fewer schedules is the point of pruning.
type PruneDigest = (Option<Schedule>, Option<(String, Vec<Verdict>, usize)>);

/// [`diagnose_with`] at an explicit prune level, reduced to the
/// count-free digest.
fn diagnose_pruned(
    program: &Arc<Program>,
    vms: usize,
    fault: Option<FaultInjection>,
    memo: bool,
    prune: PruneLevel,
) -> PruneDigest {
    let exec = memo_pool(vms, fault, memo);
    let out = Lifs::with_executor(
        Arc::clone(program),
        LifsConfig {
            max_interleavings: 2,
            max_schedules: 2_000,
            prune,
            ..LifsConfig::default()
        },
        Arc::clone(&exec),
    )
    .search();
    let schedule = out.failing.as_ref().map(|r| r.schedule.clone());
    let analysis = out.failing.map(|run| {
        let result =
            CausalityAnalysis::with_executor(CausalityConfig::default(), exec).analyze(&run);
        let verdicts: Vec<Verdict> = result.tested.iter().map(|t| t.verdict).collect();
        (
            result.chain.to_string(),
            verdicts,
            result.stats.schedules_executed,
        )
    });
    (schedule, analysis)
}

proptest! {
    // Each case diagnoses seven times (off baseline plus two levels at
    // three worker counts); keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// DPOR pruning is invisible to diagnosis: `conflict` and `dpor` yield
    /// the same first failing schedule and a bit-identical chain, verdict
    /// list, and Causality Analysis schedule count as the unpruned `off`
    /// search, at 1, 2, and 8 workers. Every pruned plan is equivalent to
    /// one explored earlier in canonical order, so the first survivor is
    /// the first failure.
    #[test]
    fn prune_levels_agree_on_diagnosis(threads in gen_program()) {
        let program = build(&threads);
        let baseline = diagnose_pruned(&program, 1, None, true, PruneLevel::Off);
        for level in [PruneLevel::Conflict, PruneLevel::Dpor] {
            for vms in [1usize, 2, 8] {
                let pruned = diagnose_pruned(&program, vms, None, true, level);
                prop_assert_eq!(
                    &baseline,
                    &pruned,
                    "diverged at {:?} / {} workers",
                    level,
                    vms
                );
            }
        }
    }
}

proptest! {
    // Each case diagnoses five times; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Prune-level agreement survives deterministic VM-fault injection: a
    /// faulted serial run disables the sleep/persistent rules (a faulted
    /// node may not seed a sleep set), so injected faults never make
    /// `dpor` skip a schedule `off` would have found first.
    #[test]
    fn prune_levels_agree_under_fault_injection(threads in gen_program()) {
        let fault = FaultInjection {
            seed: 0xA17A,
            rate_permille: 120,
            max_retries: 2,
            quarantine_after: 2,
        };
        let program = build(&threads);
        let baseline = diagnose_pruned(&program, 1, Some(fault), true, PruneLevel::Off);
        for (vms, level) in [
            (1usize, PruneLevel::Conflict),
            (1, PruneLevel::Dpor),
            (2, PruneLevel::Dpor),
            (8, PruneLevel::Dpor),
        ] {
            let pruned = diagnose_pruned(&program, vms, Some(fault), true, level);
            prop_assert_eq!(
                &baseline,
                &pruned,
                "diverged at {:?} / {} workers",
                level,
                vms
            );
        }
    }

    /// Prune-level agreement holds without the memo table and snapshot
    /// forest too — and mixing memo-off `off` against memo-on `dpor`
    /// proves a memo hit feeds the sleep-set machinery the same step
    /// records a real execution would.
    #[test]
    fn prune_levels_agree_without_memoization(threads in gen_program()) {
        let program = build(&threads);
        let baseline = diagnose_pruned(&program, 1, None, false, PruneLevel::Off);
        for memo in [false, true] {
            for vms in [1usize, 2, 8] {
                let pruned = diagnose_pruned(&program, vms, None, memo, PruneLevel::Dpor);
                prop_assert_eq!(
                    &baseline,
                    &pruned,
                    "diverged at memo={} / {} workers",
                    memo,
                    vms
                );
            }
        }
    }
}

/// What the causality levels must keep invariant: the failing schedule and
/// everything the diagnosis *says* — chain and per-race verdicts. The
/// Causality Analysis schedule count is deliberately excluded: executing
/// fewer flips is the point of the adaptive level.
type CausalityDigest = (Option<Schedule>, Option<(String, Vec<Verdict>)>);

/// [`diagnose_with`] at explicit prune and causality levels, reduced to
/// the flip-count-free digest.
fn diagnose_causal(
    program: &Arc<Program>,
    vms: usize,
    fault: Option<FaultInjection>,
    memo: bool,
    prune: PruneLevel,
    level: CausalityLevel,
) -> CausalityDigest {
    let exec = memo_pool(vms, fault, memo);
    let out = Lifs::with_executor(
        Arc::clone(program),
        LifsConfig {
            max_interleavings: 2,
            max_schedules: 2_000,
            prune,
            ..LifsConfig::default()
        },
        Arc::clone(&exec),
    )
    .search();
    let schedule = out.failing.as_ref().map(|r| r.schedule.clone());
    let analysis = out.failing.map(|run| {
        let result = CausalityAnalysis::with_executor(
            CausalityConfig {
                level,
                ..CausalityConfig::default()
            },
            exec,
        )
        .analyze(&run);
        let verdicts: Vec<Verdict> = result.tested.iter().map(|t| t.verdict).collect();
        (result.chain.to_string(), verdicts)
    });
    (schedule, analysis)
}

proptest! {
    // Each case diagnoses twelve times (exhaustive baseline plus adaptive
    // at three worker counts, per prune level); keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The adaptive causality level is invisible to diagnosis: static
    /// benign proofs and gain-ordered flip submission yield the same
    /// chain and verdict list as the exhaustive level, at every prune
    /// level and worker count.
    #[test]
    fn causality_levels_agree_on_diagnosis(threads in gen_program()) {
        let program = build(&threads);
        for prune in [PruneLevel::Off, PruneLevel::Conflict, PruneLevel::Dpor] {
            let baseline =
                diagnose_causal(&program, 1, None, true, prune, CausalityLevel::Exhaustive);
            for vms in [1usize, 2, 8] {
                let adaptive =
                    diagnose_causal(&program, vms, None, true, prune, CausalityLevel::Adaptive);
                prop_assert_eq!(
                    &baseline,
                    &adaptive,
                    "diverged at {:?} / {} workers",
                    prune,
                    vms
                );
            }
        }
    }
}

proptest! {
    // Each case diagnoses four times; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Causality-level agreement survives deterministic VM-fault
    /// injection: a statically proved flip is never executed, so it can
    /// never fault, and fault decisions for the flips that do run key on
    /// job content — not on submission order, which the gain ranking
    /// permutes.
    #[test]
    fn causality_levels_agree_under_fault_injection(threads in gen_program()) {
        let fault = FaultInjection {
            seed: 0xA17A,
            rate_permille: 120,
            max_retries: 2,
            quarantine_after: 2,
        };
        let program = build(&threads);
        let baseline = diagnose_causal(
            &program, 1, Some(fault), true, PruneLevel::Conflict, CausalityLevel::Exhaustive,
        );
        for (vms, prune) in [
            (1usize, PruneLevel::Conflict),
            (2, PruneLevel::Dpor),
            (8, PruneLevel::Dpor),
        ] {
            let adaptive = diagnose_causal(
                &program, vms, Some(fault), true, prune, CausalityLevel::Adaptive,
            );
            prop_assert_eq!(
                &baseline,
                &adaptive,
                "diverged at {:?} / {} workers",
                prune,
                vms
            );
        }
    }

    /// Causality-level agreement holds without the memo table and
    /// snapshot forest too — and mixing memo-off exhaustive against
    /// memo-on adaptive proves a skipped flip is equivalent whether the
    /// executed baseline answered it from a VM or from the table.
    #[test]
    fn causality_levels_agree_without_memoization(threads in gen_program()) {
        let program = build(&threads);
        let baseline = diagnose_causal(
            &program, 1, None, false, PruneLevel::Conflict, CausalityLevel::Exhaustive,
        );
        for memo in [false, true] {
            for vms in [1usize, 2, 8] {
                let adaptive = diagnose_causal(
                    &program, vms, None, memo, PruneLevel::Conflict, CausalityLevel::Adaptive,
                );
                prop_assert_eq!(
                    &baseline,
                    &adaptive,
                    "diverged at memo={} / {} workers",
                    memo,
                    vms
                );
            }
        }
    }
}

/// True when `out` is a contiguous `Some` prefix: no `Some` after the
/// first `None`.
fn contiguous_prefix<T>(out: &[Option<T>]) -> bool {
    let first_none = out.iter().position(Option::is_none).unwrap_or(out.len());
    out[first_none..].iter().all(Option::is_none)
}

/// The serial schedule of `program` as a batch of `n` identical jobs.
fn repeated_jobs(program: &Arc<Program>, n: usize) -> Vec<ExecJob> {
    let job = ExecJob {
        program: Arc::clone(program),
        schedule: serial_schedule(program),
        enforce: EnforceConfig::default(),
    };
    vec![job; n]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A `CancelToken` fired after `c` executed jobs mid-`run_until` still
    /// yields a contiguous `Some` prefix — no holes — at 1, 2, and 8
    /// workers; cancelling before the first job yields all `None`.
    #[test]
    fn cancelled_run_until_keeps_a_contiguous_prefix(
        threads in gen_program(),
        c in 0usize..6,
    ) {
        let program = build(&threads);
        let jobs = repeated_jobs(&program, 6);
        for vms in [1usize, 2, 8] {
            let exec = threaded_pool(vms);
            let cancel = CancelToken::new();
            if c == 0 {
                cancel.cancel();
            }
            let executed = AtomicUsize::new(0);
            let out = exec.run_until(&jobs, &cancel, |_| {
                if executed.fetch_add(1, Ordering::SeqCst) + 1 >= c {
                    cancel.cancel();
                }
                false
            });
            prop_assert_eq!(out.len(), jobs.len());
            prop_assert!(contiguous_prefix(&out), "hole in results at {} workers", vms);
            if c == 0 {
                prop_assert!(
                    out.iter().all(Option::is_none),
                    "cancel-before-first-job still executed a job at {} workers",
                    vms
                );
            }
        }
    }

    /// Mid-batch cancellation composes with memoization: a memo-on batch
    /// of identical jobs (so later jobs are memo hits) cancelled after `c`
    /// completions still yields a contiguous prefix, and every completed
    /// output — executed or served from the table — is bit-identical to
    /// the memo-off uncancelled baseline at the same index.
    #[test]
    fn cancelled_memoized_batch_matches_memo_off_prefix(
        threads in gen_program(),
        c in 0usize..6,
    ) {
        let program = build(&threads);
        let jobs = repeated_jobs(&program, 6);
        let baseline = memo_pool(1, None, false).run_batch(&jobs, &CancelToken::new());
        for vms in [1usize, 2, 8] {
            let exec = memo_pool(vms, None, true);
            let cancel = CancelToken::new();
            if c == 0 {
                cancel.cancel();
            }
            let executed = AtomicUsize::new(0);
            let out = exec.run_until(&jobs, &cancel, |_| {
                if executed.fetch_add(1, Ordering::SeqCst) + 1 >= c {
                    cancel.cancel();
                }
                false
            });
            prop_assert!(contiguous_prefix(&out), "hole in results at {} workers", vms);
            for (got, want) in out.iter().zip(&baseline) {
                let Some(got) = got else { break };
                let want = want.as_ref().expect("uncancelled baseline completes");
                prop_assert_eq!(&got.run.trace, &want.run.trace);
                prop_assert_eq!(&got.run.failure, &want.run.failure);
                prop_assert_eq!(got.run.steps, want.run.steps);
                prop_assert_eq!(got.retries, want.retries);
            }
        }
    }

    /// The same contract holds for opaque task fan-out: cancelling
    /// mid-scan through `run_tasks_until` leaves a contiguous prefix of
    /// completed tasks, and each task's child token observes the cancel.
    #[test]
    fn cancelled_run_tasks_until_keeps_a_contiguous_prefix(
        threads in gen_program(),
        c in 0usize..6,
    ) {
        let program = build(&threads);
        for vms in [1usize, 2, 8] {
            let exec = threaded_pool(vms);
            let cancel = CancelToken::new();
            if c == 0 {
                cancel.cancel();
            }
            let finished = AtomicUsize::new(0);
            let out = exec.run_tasks_until(
                6,
                &cancel,
                |i, token| {
                    // A task aborts early when its child token fires, as a
                    // slice search would at a schedule boundary.
                    if token.is_cancelled() {
                        return None;
                    }
                    let mut e = Engine::new(Arc::clone(&program));
                    let res =
                        enforce::run(&mut e, &serial_schedule(&program), &EnforceConfig::default());
                    Some((i, res.trace.len()))
                },
                |_| {
                    if finished.fetch_add(1, Ordering::SeqCst) + 1 >= c {
                        cancel.cancel();
                    }
                    false
                },
            );
            prop_assert_eq!(out.len(), 6);
            prop_assert!(contiguous_prefix(&out), "hole in task results at {} workers", vms);
            if c == 0 {
                prop_assert!(
                    out.iter().all(Option::is_none),
                    "cancel-before-first-task still ran a task at {} workers",
                    vms
                );
            }
        }
    }
}

/// Round-batched LIFS keeps "first failing schedule wins": several serial
/// permutations fail here, and at any worker count the search must report
/// the front-to-back first one and count exactly the schedules up to it.
#[test]
fn lifs_batches_stop_at_first_failing_schedule() {
    // A publishes a pointer two consumers dereference: every permutation
    // where B or C runs before A crashes, so the batch of serial
    // permutations holds multiple failures and a racing worker could
    // finish a later one first.
    let mut p = ProgramBuilder::new("first-fail");
    let obj = p.static_obj("obj", 8);
    let real = p.global_ptr("storage", obj);
    let ptr = p.global("ptr", 0);
    {
        let mut a = p.syscall_thread("A", "publish");
        a.load_global("r0", real);
        a.store_global_from(ptr, "r0");
        a.ret();
    }
    for name in ["B", "C"] {
        let mut t = p.syscall_thread(name, "consume");
        t.load_global("r1", ptr);
        t.load_ind("r2", "r1", 0);
        t.ret();
    }
    let program = Arc::new(p.build().expect("builds"));
    let outputs: Vec<_> = [1usize, 8]
        .into_iter()
        .map(|vms| {
            let out = Lifs::with_executor(
                Arc::clone(&program),
                LifsConfig::default(),
                threaded_pool(vms),
            )
            .search();
            (
                out.stats.schedules_executed,
                out.stats.interleaving_count,
                out.failing.expect("a serial permutation fails").schedule,
            )
        })
        .collect();
    assert_eq!(outputs[0], outputs[1], "pool size changed the outcome");
    let (schedules, interleavings, _) = &outputs[0];
    assert_eq!(*interleavings, 0, "a serial permutation fails");
    // Permutations are submitted front to back; the fold stops at the
    // first failing one, so later failing permutations are never counted.
    let all_perms = 6;
    assert!(
        *schedules < all_perms,
        "expected an early stop, executed {schedules}"
    );
}

proptest! {
    // Each case runs two single runs plus twelve small batches; keep the
    // case count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The `ExecBackend` seam is invisible for ksim at the run level:
    /// enforcing a schedule on a stack-allocated `Engine` (coerced to
    /// `&mut dyn` at the call site) and on a `BackendKind::Ksim.boot()`
    /// trait object yield bit-identical runs, and a pooled executor —
    /// whose workers hold boxed trait objects booted through the registry
    /// — returns that same run for the same job at 1, 2, and 8 workers,
    /// with and without memoization and deterministic fault injection.
    #[test]
    fn ksim_direct_and_trait_object_runs_are_identical(threads in gen_program()) {
        let program = build(&threads);
        let schedule = serial_schedule(&program);
        let config = EnforceConfig::default();

        let mut direct = Engine::new(Arc::clone(&program));
        let want = enforce::run(&mut direct, &schedule, &config);
        let mut boxed = BackendKind::Ksim.boot(Arc::clone(&program));
        let via = enforce::run(boxed.as_mut(), &schedule, &config);
        prop_assert_eq!(&want.trace, &via.trace);
        prop_assert_eq!(&want.failure, &via.failure);
        prop_assert_eq!(want.steps, via.steps);

        let fault = FaultInjection {
            seed: 0xA17A,
            rate_permille: 120,
            max_retries: 2,
            quarantine_after: 2,
        };
        let jobs = repeated_jobs(&program, 3);
        for fault in [None, Some(fault)] {
            // Fault decisions key on job content and attempt number, so
            // the honest reference for a faulted cell is a fault-matched
            // serial pool, not the fault-free run above.
            let base = memo_pool(1, fault, false).run_batch(&jobs, &CancelToken::new());
            for memo in [false, true] {
                for vms in [1usize, 2, 8] {
                    let out = memo_pool(vms, fault, memo).run_batch(&jobs, &CancelToken::new());
                    prop_assert_eq!(out.len(), base.len());
                    for (got, want) in out.iter().zip(&base) {
                        match (got, want) {
                            (None, None) => {}
                            (Some(got), Some(want)) => {
                                prop_assert_eq!(&got.run.trace, &want.run.trace);
                                prop_assert_eq!(&got.run.failure, &want.run.failure);
                                prop_assert_eq!(got.run.steps, want.run.steps);
                                prop_assert_eq!(got.retries, want.retries);
                            }
                            _ => prop_assert!(
                                false,
                                "completion mismatch at memo={} / {} workers / fault={}",
                                memo, vms, fault.is_some()
                            ),
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    // Each case diagnoses twelve times (two fault-matched baselines plus
    // five matrix cells each); keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The backend seam is invisible at the diagnosis level too: full
    /// diagnoses through trait-object pools match the 1-worker memo-off
    /// reference digest across prune levels × memoization × worker counts,
    /// with and without fault injection.
    #[test]
    fn diagnosis_digest_is_backend_seam_invariant(threads in gen_program()) {
        let fault = FaultInjection {
            seed: 0xA17A,
            rate_permille: 120,
            max_retries: 2,
            quarantine_after: 2,
        };
        let program = build(&threads);
        for fault in [None, Some(fault)] {
            let baseline = diagnose_causal(
                &program, 1, fault, false, PruneLevel::Off, CausalityLevel::Exhaustive,
            );
            for (prune, memo, vms) in [
                (PruneLevel::Off, true, 2usize),
                (PruneLevel::Conflict, false, 1),
                (PruneLevel::Conflict, true, 8),
                (PruneLevel::Dpor, true, 2),
                (PruneLevel::Dpor, false, 8),
            ] {
                let cell = diagnose_causal(
                    &program, vms, fault, memo, prune, CausalityLevel::Exhaustive,
                );
                prop_assert_eq!(
                    &baseline,
                    &cell,
                    "diverged at {:?} / memo={} / {} workers / fault={}",
                    prune,
                    memo,
                    vms,
                    fault.is_some()
                );
            }
        }
    }
}
