#!/usr/bin/env bash
# Regenerates BENCH_memo.json, the perf artifact for cross-run schedule
# memoization: `report bench-memo` diagnoses the Table 2 corpus twice with
# memoization off (the baseline) and twice with it on, checks the diagnoses
# are bit-identical, and reports VM executions, memo/forest hits, and
# simulated seconds saved. BENCH_SCALE overrides the noise scale (default
# 1.0, the full calibration — several minutes; 0.1 runs in seconds), and
# BENCH_OUT the output path (default BENCH_memo.json — the checked-in
# artifact; CI's smoke run writes under target/ instead).
#
# Also regenerates BENCH_resume.json, the crash-safety artifact: `report
# bench-resume` runs a journaled campaign, truncates the journal at 25/50/75%
# of its records (a modeled kill), resumes against a fresh program identity,
# and reports the VM executions the journal replay saved — gated on
# bit-identical diagnoses and >= 40% savings at the 50% interruption point.
# BENCH_RESUME_OUT overrides the output path (default BENCH_resume.json).
#
# Also regenerates BENCH_prune.json, the DPOR-pruning artifact: `report
# bench-prune` diagnoses the Table 2 corpus at every prune level (off,
# conflict, dpor) and reports per-level schedule counts — gated on
# bit-identical diagnoses across all three levels and dpor executing
# >= 30% fewer schedules than conflict. The unpruned off level is
# exponential in the noise scale, so the prune bench runs at its own
# (small) scale: BENCH_PRUNE_SCALE overrides it (default 0.02), and
# BENCH_PRUNE_OUT the output path (default BENCH_prune.json).
#
# Also regenerates BENCH_causality.json, the adaptive-intervention
# artifact: `report bench-causality` diagnoses the Table 2 corpus at both
# causality levels (exhaustive, adaptive) plus an adaptive agreement-audit
# pass in which statically proved flips still execute — gated on
# bit-identical diagnoses across all three sides, zero static-proof
# disagreements, and adaptive paying >= 30% fewer flip VM executions than
# exhaustive. BENCH_CAUSALITY_SCALE overrides its noise scale (default
# 1.0), and BENCH_CAUSALITY_OUT the output path (default
# BENCH_causality.json).
#
# Also regenerates BENCH_throughput.json, the substrate-throughput
# artifact: `report bench-throughput` diagnoses the Table 2 corpus on both
# substrate configurations (pre-refactor deep-clone snapshots + counter
# claiming vs copy-on-write snapshots + work stealing) at 1/2/8 workers —
# gated on bit-identical diagnoses across all cells and >= 2x schedules
# per busy second at 8 workers. BENCH_THROUGHPUT_SCALE overrides its noise
# scale (default 1.0; the structural-sharing win grows with trace length,
# so small smoke scales will not clear the 2x gate),
# BENCH_THROUGHPUT_REPEATS the passes per cell (default 2, least-busy pass
# reported), BENCH_THROUGHPUT_OUT the output path (default
# BENCH_throughput.json), and BENCH_THROUGHPUT_GATE=identity relaxes the
# gate to the bit-identity check alone (CI's smoke mode).
#
# Also regenerates BENCH_corpus.json, the generative-corpus artifact:
# `report fuzz` synthesizes BENCH_CORPUS_SEEDS programs with planted
# races (default 200) and runs every one through the full 78-cell
# executor configuration matrix (prune x memo x claim x snapshots x
# workers, plus adaptive-causality cells) — gated on bit-identical
# diagnosis digests across every cell and >= 95% planted-race recall at
# both causality levels.
# BENCH_CORPUS_SEEDS overrides the seed count, BENCH_CORPUS_SEED_START
# the first seed (default 0), and BENCH_CORPUS_OUT the output path
# (default BENCH_corpus.json).
#
# Also regenerates BENCH_server.json, the campaignd throughput artifact:
# `report bench-server` streams the Table 2 corpus (three noise scales per
# bug, 30 campaigns) through two fresh server instances — serial
# submission (one campaign at a time holding the whole 8-VM pool) vs 8
# concurrent fair-shared campaigns — and reports campaigns/hour plus
# p50/p95 queue latency on the deterministic simulated clock, gated on
# bit-identical per-job digests and a >= 1.5x campaigns-per-hour speedup.
# BENCH_SERVER_SCALE overrides its noise scale (default 0.05; large
# scales make single campaigns saturate the pool, shrinking the
# concurrency win by design), and BENCH_SERVER_OUT the output path
# (default BENCH_server.json).
set -euo pipefail

cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-1.0}"
OUT="${BENCH_OUT:-BENCH_memo.json}"
RESUME_OUT="${BENCH_RESUME_OUT:-BENCH_resume.json}"
PRUNE_SCALE="${BENCH_PRUNE_SCALE:-0.02}"
PRUNE_OUT="${BENCH_PRUNE_OUT:-BENCH_prune.json}"
CAUSALITY_SCALE="${BENCH_CAUSALITY_SCALE:-1.0}"
CAUSALITY_OUT="${BENCH_CAUSALITY_OUT:-BENCH_causality.json}"
THROUGHPUT_SCALE="${BENCH_THROUGHPUT_SCALE:-1.0}"
THROUGHPUT_REPEATS="${BENCH_THROUGHPUT_REPEATS:-2}"
THROUGHPUT_OUT="${BENCH_THROUGHPUT_OUT:-BENCH_throughput.json}"
THROUGHPUT_GATE="${BENCH_THROUGHPUT_GATE:-full}"
CORPUS_SEEDS="${BENCH_CORPUS_SEEDS:-200}"
CORPUS_SEED_START="${BENCH_CORPUS_SEED_START:-0}"
CORPUS_OUT="${BENCH_CORPUS_OUT:-BENCH_corpus.json}"
SERVER_SCALE="${BENCH_SERVER_SCALE:-0.05}"
SERVER_OUT="${BENCH_SERVER_OUT:-BENCH_server.json}"

cargo build --release -p aitia-bench
./target/release/report bench-memo --scale "$SCALE" > "$OUT"
echo "wrote $OUT (scale $SCALE)"

grep -q '"diagnoses_identical": true' "$OUT" \
    || { echo "FAIL: memoized diagnoses diverged from baseline" >&2; exit 1; }

./target/release/report bench-resume --scale "$SCALE" > "$RESUME_OUT"
echo "wrote $RESUME_OUT (scale $SCALE)"

grep -q '"meets_resume_gate": true' "$RESUME_OUT" \
    || { echo "FAIL: resume bench missed the gate (divergent diagnosis or < 40% VM executions saved at 50% interruption)" >&2; exit 1; }

./target/release/report bench-prune --scale "$PRUNE_SCALE" > "$PRUNE_OUT"
echo "wrote $PRUNE_OUT (scale $PRUNE_SCALE)"

grep -q '"meets_prune_gate": true' "$PRUNE_OUT" \
    || { echo "FAIL: prune bench missed the gate (divergent diagnosis across prune levels or < 30% schedule reduction dpor vs conflict)" >&2; exit 1; }

./target/release/report bench-causality --scale "$CAUSALITY_SCALE" > "$CAUSALITY_OUT"
echo "wrote $CAUSALITY_OUT (scale $CAUSALITY_SCALE)"

grep -q '"meets_causality_gate": true' "$CAUSALITY_OUT" \
    || { echo "FAIL: causality bench missed the gate (divergent diagnosis across causality levels, a static-proof disagreement, or < 30% flip-execution reduction)" >&2; exit 1; }

./target/release/report bench-throughput --scale "$THROUGHPUT_SCALE" \
    --repeats "$THROUGHPUT_REPEATS" > "$THROUGHPUT_OUT"
echo "wrote $THROUGHPUT_OUT (scale $THROUGHPUT_SCALE, $THROUGHPUT_REPEATS repeats)"

if [ "$THROUGHPUT_GATE" = identity ]; then
    grep -q '"diagnoses_identical": true' "$THROUGHPUT_OUT" \
        || { echo "FAIL: substrate configurations produced divergent diagnoses" >&2; exit 1; }
else
    grep -q '"meets_throughput_gate": true' "$THROUGHPUT_OUT" \
        || { echo "FAIL: throughput bench missed the gate (divergent diagnoses or < 2x schedules/s at 8 workers)" >&2; exit 1; }
fi

./target/release/report fuzz --seeds "$CORPUS_SEEDS" \
    --seed-start "$CORPUS_SEED_START" > "$CORPUS_OUT"
echo "wrote $CORPUS_OUT ($CORPUS_SEEDS seeds from $CORPUS_SEED_START)"

grep -q '"meets_corpus_gate": true' "$CORPUS_OUT" \
    || { echo "FAIL: corpus fuzz missed the gate (digest mismatch across the executor matrix or < 95% planted-race recall)" >&2; exit 1; }

./target/release/report bench-server --scale "$SERVER_SCALE" > "$SERVER_OUT"
echo "wrote $SERVER_OUT (scale $SERVER_SCALE)"

grep -q '"meets_server_gate": true' "$SERVER_OUT" \
    || { echo "FAIL: server bench missed the gate (divergent diagnoses between serial and concurrent campaigns, or < 1.5x campaigns/hour at 8 concurrent)" >&2; exit 1; }
