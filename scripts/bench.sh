#!/usr/bin/env bash
# Regenerates BENCH_memo.json, the perf artifact for cross-run schedule
# memoization: `report bench-memo` diagnoses the Table 2 corpus twice with
# memoization off (the baseline) and twice with it on, checks the diagnoses
# are bit-identical, and reports VM executions, memo/forest hits, and
# simulated seconds saved. BENCH_SCALE overrides the noise scale (default
# 1.0, the full calibration — several minutes; 0.1 runs in seconds), and
# BENCH_OUT the output path (default BENCH_memo.json — the checked-in
# artifact; CI's smoke run writes under target/ instead).
set -euo pipefail

cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-1.0}"
OUT="${BENCH_OUT:-BENCH_memo.json}"

cargo build --release -p aitia-bench
./target/release/report bench-memo --scale "$SCALE" > "$OUT"
echo "wrote $OUT (scale $SCALE)"

grep -q '"diagnoses_identical": true' "$OUT" \
    || { echo "FAIL: memoized diagnoses diverged from baseline" >&2; exit 1; }
