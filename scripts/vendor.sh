#!/usr/bin/env bash
# Regenerates vendor/*/.cargo-checksum.json after editing a vendored crate.
# Cargo's directory-source replacement verifies each listed file against its
# sha256, so any change to a vendored file must be followed by a run of this
# script.
set -euo pipefail

cd "$(dirname "$0")/.."

for crate in vendor/*/; do
    [ -f "$crate/Cargo.toml" ] || continue
    (
        cd "$crate"
        {
            echo -n '{"files":{'
            first=1
            while IFS= read -r -d '' f; do
                rel="${f#./}"
                [ "$rel" = ".cargo-checksum.json" ] && continue
                sum=$(sha256sum "$f" | cut -d' ' -f1)
                if [ $first -eq 1 ]; then first=0; else echo -n ','; fi
                echo -n "\"$rel\":\"$sum\""
            done < <(find . -type f -print0 | sort -z)
            echo -n '},"package":""}'
        } > .cargo-checksum.json
    )
    echo "checksummed $crate"
done
