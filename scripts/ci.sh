#!/usr/bin/env bash
# The repo's CI gate, runnable locally and from .github/workflows/ci.yml.
# Builds are fully offline: vendor/ + .cargo/config.toml replace the
# registry, so no network access is needed beyond the Rust toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> bench-memo smoke (reduced scale)"
BENCH_SCALE=0.05 BENCH_OUT=target/BENCH_memo_smoke.json scripts/bench.sh

echo "CI OK"
