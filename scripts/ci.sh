#!/usr/bin/env bash
# The repo's CI gate, runnable locally and from .github/workflows/ci.yml.
# Builds are fully offline: vendor/ + .cargo/config.toml replace the
# registry, so no network access is needed beyond the Rust toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> kvm backend (compile + lint, always; runtime smoke skips without /dev/kvm)"
# The kvm feature is CI-checked on every machine even though most runners
# have no /dev/kvm: the backend must always compile and lint clean, and
# the conformance suite plus the microVM unit tests detect the device at
# runtime, printing a skip note instead of failing where it is absent.
cargo check -p aitia-repro -p aitia-bench --features kvm
cargo clippy -p aitia-kvm --all-targets -- -D warnings
cargo clippy -p aitia --features kvm --all-targets -- -D warnings
cargo test -q -p aitia-kvm
cargo test -q -p aitia-repro --features kvm --test backend_conformance

echo "==> cargo test"
# The default test run includes the backend conformance kit
# (tests/backend_conformance.rs) against every available backend.
cargo test --workspace -q

echo "==> bench smoke (reduced scale)"
# The throughput cell runs in identity mode: at smoke scale the traces are
# too short for structural sharing to clear the 2x speed gate, but the
# bit-identity of diagnoses across substrate configurations must hold at
# every scale.
# The fuzz smoke runs a small fixed seed range through the full 78-cell
# executor matrix; the gate grep inside bench.sh asserts both bit-identical
# digests across every cell and planted-race recall.
BENCH_SCALE=0.05 BENCH_OUT=target/BENCH_memo_smoke.json \
    BENCH_RESUME_OUT=target/BENCH_resume_smoke.json \
    BENCH_PRUNE_OUT=target/BENCH_prune_smoke.json \
    BENCH_CAUSALITY_SCALE=0.05 \
    BENCH_CAUSALITY_OUT=target/BENCH_causality_smoke.json \
    BENCH_THROUGHPUT_SCALE=0.05 BENCH_THROUGHPUT_REPEATS=1 \
    BENCH_THROUGHPUT_OUT=target/BENCH_throughput_smoke.json \
    BENCH_THROUGHPUT_GATE=identity \
    BENCH_CORPUS_SEEDS=8 BENCH_CORPUS_OUT=target/BENCH_corpus_smoke.json \
    BENCH_SERVER_SCALE=0.05 BENCH_SERVER_OUT=target/BENCH_server_smoke.json \
    scripts/bench.sh

echo "==> backend flag validation smoke"
# A build without the kvm feature must reject `--backend kvm` with a
# usage error (exit 2) at startup, and `--backend ksim` must change
# nothing about a diagnosis.
set +e
./target/release/diagnose CVE-2017-15649 --backend kvm > /dev/null 2> /dev/null
BACKEND_RC=$?
set -e
[ "$BACKEND_RC" -eq 2 ] \
    || { echo "FAIL: --backend kvm without the feature exited $BACKEND_RC, want 2" >&2; exit 1; }
./target/release/diagnose CVE-2017-15649 --scale 0.05 --backend ksim \
    > target/ci-backend-ksim.txt 2> /dev/null
./target/release/diagnose CVE-2017-15649 --scale 0.05 \
    > target/ci-backend-default.txt 2> /dev/null
diff target/ci-backend-ksim.txt target/ci-backend-default.txt \
    || { echo "FAIL: --backend ksim changed the diagnosis" >&2; exit 1; }

echo "==> prune ablation smoke"
# The same bug diagnosed with pruning fully off and with full DPOR pruning
# must print byte-identical reports: pruning only skips equivalent
# schedules, never changes what is diagnosed. diagnose keeps stats on
# stderr precisely so stdout is comparable here.
ABLATE_BUG=CVE-2017-10661
./target/release/diagnose "$ABLATE_BUG" --scale 0.05 --prune-level off \
    > target/ci-ablate-off.txt 2> target/ci-ablate-off.err
./target/release/diagnose "$ABLATE_BUG" --scale 0.05 --prune-level dpor \
    > target/ci-ablate-dpor.txt 2> target/ci-ablate-dpor.err
diff target/ci-ablate-off.txt target/ci-ablate-dpor.txt \
    || { echo "FAIL: dpor pruning changed the diagnosis" >&2; exit 1; }

echo "==> causality ablation smoke"
# The same bug diagnosed at both causality levels must print byte-identical
# reports: the adaptive level skips statically proved flips and reorders
# submission by information gain, but never changes what is diagnosed. The
# adaptive-level stats (static skips, reordered flips) land on stderr with
# the rest of the counters.
./target/release/diagnose "$ABLATE_BUG" --scale 0.05 --causality-level exhaustive \
    > target/ci-ablate-exhaustive.txt 2> target/ci-ablate-exhaustive.err
./target/release/diagnose "$ABLATE_BUG" --scale 0.05 --causality-level adaptive \
    > target/ci-ablate-adaptive.txt 2> target/ci-ablate-adaptive.err
diff target/ci-ablate-exhaustive.txt target/ci-ablate-adaptive.txt \
    || { echo "FAIL: adaptive causality changed the diagnosis" >&2; exit 1; }
grep -q 'skipped by static proof' target/ci-ablate-adaptive.err \
    || { echo "FAIL: adaptive run did not report causality stats" >&2; exit 1; }

echo "==> kill-and-resume smoke"
# Start a journaled diagnosis, SIGKILL it partway through, resume it over the
# surviving journal, and require the resumed report to diff clean against an
# uninterrupted (journal-free) run. The kill is racy by design: if the run
# finishes before the signal lands, the resume replays a complete journal and
# the diff must still be clean. diagnose keeps stats on stderr precisely so
# stdout is comparable here.
SMOKE_BUG=CVE-2017-15649
SMOKE_JOURNAL=target/ci-resume-smoke.wal
rm -f "$SMOKE_JOURNAL"
./target/release/diagnose "$SMOKE_BUG" --scale 0.05 --journal "$SMOKE_JOURNAL" \
    > target/ci-resume-interrupted.txt 2> target/ci-resume-interrupted.err &
SMOKE_PID=$!
sleep 0.2
kill -9 "$SMOKE_PID" 2> /dev/null || true
wait "$SMOKE_PID" 2> /dev/null || true
./target/release/diagnose "$SMOKE_BUG" --scale 0.05 --journal "$SMOKE_JOURNAL" \
    > target/ci-resume-resumed.txt 2> target/ci-resume-resumed.err
./target/release/diagnose "$SMOKE_BUG" --scale 0.05 \
    > target/ci-resume-reference.txt 2> target/ci-resume-reference.err
diff target/ci-resume-resumed.txt target/ci-resume-reference.txt \
    || { echo "FAIL: resumed diagnosis diverged from the uninterrupted run" >&2; exit 1; }
grep -q '^journal: ' target/ci-resume-resumed.err \
    || { echo "FAIL: resumed run did not report journal stats" >&2; exit 1; }

echo "==> campaignd smoke"
# Submit a batch of corpus bugs to the daemon's durable queue, start the
# daemon, SIGKILL it partway through, restart it in drain mode, and require
# every result file to diff clean against direct `diagnose --report-only`
# runs. The kill is racy by design: whether it lands mid-campaign, between
# campaigns, or after the drain, the restart must recover the queue and
# land every job on the same bytes.
CDIR=target/ci-campaignd
rm -rf "$CDIR"
SMOKE_BUGS="CVE-2017-15649 CVE-2017-10661 CVE-2018-12232 CVE-2019-6974 \
    CVE-2016-8655 CVE-2017-2636 CVE-2017-7533 CVE-2019-11486"
for bug in $SMOKE_BUGS; do
    ./target/release/campaignd submit --dir "$CDIR" "cve:$bug:0.05" > /dev/null
done
./target/release/campaignd run --dir "$CDIR" --drain --poll-ms 5 \
    2> target/ci-campaignd-first.err &
CD_PID=$!
sleep 0.2
kill -9 "$CD_PID" 2> /dev/null || true
wait "$CD_PID" 2> /dev/null || true
./target/release/campaignd run --dir "$CDIR" --drain --poll-ms 5 \
    2> target/ci-campaignd-restart.err
./target/release/campaignd status --dir "$CDIR" > target/ci-campaignd-status.json
id=0
for bug in $SMOKE_BUGS; do
    id=$((id + 1))
    ./target/release/diagnose "$bug" --scale 0.05 --report-only \
        > target/ci-campaignd-ref.txt 2> /dev/null
    diff "$CDIR/results/job-$id.report.txt" target/ci-campaignd-ref.txt \
        || { echo "FAIL: campaignd job $id ($bug) diverged from direct diagnose" >&2; exit 1; }
done

echo "CI OK"
