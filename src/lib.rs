//! Facade crate for the AITIA reproduction workspace.
//!
//! Re-exports the public APIs of every crate so examples and integration
//! tests can use a single dependency. See `README.md` for an overview and
//! `DESIGN.md` for the system inventory.

pub use aitia;
pub use baselines;
pub use corpus;
pub use khist;
pub use ksim;
