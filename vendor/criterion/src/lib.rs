//! Minimal benchmark harness, API-compatible with the subset of
//! `criterion` 0.5 this workspace uses: `Criterion`, `benchmark_group`
//! (with `sample_size` / `throughput`), `bench_function`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Timing is real (`std::time::Instant`): each benchmark runs a short
//! warm-up, then `sample_size` samples, and reports min/median/mean per
//! iteration plus throughput when configured. When the binary is invoked
//! with `--test` (as `cargo test` does for harness-less bench targets),
//! every benchmark body runs exactly once so the suite still validates.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures one benchmark body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Runs `body` repeatedly and records per-sample timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.test_mode {
            black_box(body());
            return;
        }
        // Warm-up: a few unrecorded runs.
        for _ in 0..2 {
            black_box(body());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        let throughput = self.throughput;
        self.criterion.run_one(&full, sample_size, throughput, f);
        self
    }

    /// Finishes the group (report flushing is per-benchmark; kept for API
    /// compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        // cargo test passes `--test`; `cargo bench -- <filter>` passes the
        // filter as a free argument. `--bench` is passed by cargo itself.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(&id.to_string(), 100, None, f);
        self
    }

    /// Kept for API compatibility with `criterion_main!`.
    pub fn final_summary(&mut self) {}

    fn run_one<F>(&mut self, name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok");
            return;
        }
        if samples.is_empty() {
            println!("{name}: no samples");
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        print!(
            "{name:<60} min {:>12?} median {:>12?} mean {:>12?}",
            min, median, mean
        );
        if let Some(t) = throughput {
            let per_sec = |n: u64| {
                let secs = median.as_secs_f64();
                if secs > 0.0 {
                    n as f64 / secs
                } else {
                    f64::INFINITY
                }
            };
            match t {
                Throughput::Elements(n) => print!("  {:>12.0} elem/s", per_sec(n)),
                Throughput::Bytes(n) => print!("  {:>12.0} B/s", per_sec(n)),
            }
        }
        println!();
    }
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
