//! ChaCha-based generators, stream-compatible with `rand_chacha` 0.3.
//!
//! Implements the djb ChaCha variant (64-bit block counter, 64-bit
//! stream/nonce) and reproduces `rand_core`'s `BlockRng` buffering exactly
//! (a 4-block / 64-word buffer, with its `next_u32`/`next_u64` index
//! semantics), so values drawn through the vendored `rand` shim match the
//! real crates bit for bit.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const BUFFER_BLOCKS: usize = 4;
const BUFFER_WORDS: usize = BLOCK_WORDS * BUFFER_BLOCKS;

/// One ChaCha keystream generator with `R` double-rounds… rounds are fixed
/// per type below.
#[derive(Clone)]
struct ChaChaCore {
    /// Key words 4..12 and nonce words 14..16 of the initial state.
    key: [u32; 8],
    stream: u64,
    counter: u64,
    rounds: usize,
}

impl ChaChaCore {
    fn new(seed: [u8; 32], rounds: usize) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaCore { key, stream: 0, counter: 0, rounds }
    }

    /// Computes one 16-word block for the given counter.
    fn block(&self, counter: u64, out: &mut [u32]) {
        const C: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut x = [0u32; BLOCK_WORDS];
        x[0..4].copy_from_slice(&C);
        x[4..12].copy_from_slice(&self.key);
        x[12] = counter as u32;
        x[13] = (counter >> 32) as u32;
        x[14] = self.stream as u32;
        x[15] = (self.stream >> 32) as u32;
        let mut w = x;
        for _ in 0..self.rounds / 2 {
            // Column round.
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for i in 0..BLOCK_WORDS {
            out[i] = w[i].wrapping_add(x[i]);
        }
    }

    /// Fills the 4-block buffer and advances the counter, exactly like the
    /// real crate's `BlockRngCore::generate`.
    fn generate(&mut self, results: &mut [u32; BUFFER_WORDS]) {
        for b in 0..BUFFER_BLOCKS {
            let counter = self.counter.wrapping_add(b as u64);
            self.block(counter, &mut results[b * BLOCK_WORDS..(b + 1) * BLOCK_WORDS]);
        }
        self.counter = self.counter.wrapping_add(BUFFER_BLOCKS as u64);
    }
}

fn quarter(w: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    w[a] = w[a].wrapping_add(w[b]);
    w[d] = (w[d] ^ w[a]).rotate_left(16);
    w[c] = w[c].wrapping_add(w[d]);
    w[b] = (w[b] ^ w[c]).rotate_left(12);
    w[a] = w[a].wrapping_add(w[b]);
    w[d] = (w[d] ^ w[a]).rotate_left(8);
    w[c] = w[c].wrapping_add(w[d]);
    w[b] = (w[b] ^ w[c]).rotate_left(7);
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr) => {
        /// A ChaCha generator, buffered like `rand_core::block::BlockRng`.
        #[derive(Clone)]
        pub struct $name {
            core: ChaChaCore,
            results: [u32; BUFFER_WORDS],
            index: usize,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name {
                    core: ChaChaCore::new(seed, $rounds),
                    results: [0u32; BUFFER_WORDS],
                    index: BUFFER_WORDS,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= BUFFER_WORDS {
                    self.core.generate(&mut self.results);
                    self.index = 0;
                }
                let value = self.results[self.index];
                self.index += 1;
                value
            }

            fn next_u64(&mut self) -> u64 {
                let read_u64 =
                    |results: &[u32; BUFFER_WORDS], index: usize| -> u64 {
                        (u64::from(results[index + 1]) << 32) | u64::from(results[index])
                    };
                let index = self.index;
                if index < BUFFER_WORDS - 1 {
                    self.index += 2;
                    read_u64(&self.results, index)
                } else if index >= BUFFER_WORDS {
                    self.core.generate(&mut self.results);
                    self.index = 2;
                    read_u64(&self.results, 0)
                } else {
                    // Straddles a refill: low half is the last buffered word.
                    let x = u64::from(self.results[BUFFER_WORDS - 1]);
                    self.core.generate(&mut self.results);
                    self.index = 1;
                    let y = u64::from(self.results[0]);
                    (y << 32) | x
                }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8);
chacha_rng!(ChaCha12Rng, 12);
chacha_rng!(ChaCha20Rng, 20);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Keystream test vector: ChaCha20, all-zero key and nonce (RFC 8439
    /// §2.3.2 uses the IETF variant, so instead check against the djb
    /// variant's widely published first block).
    #[test]
    fn chacha20_zero_key_first_words() {
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        // First four keystream words of ChaCha20 with zero key/nonce/counter.
        assert_eq!(rng.next_u32(), 0xade0_b876);
        assert_eq!(rng.next_u32(), 0x903d_f1a0);
        assert_eq!(rng.next_u32(), 0xe56a_5d40);
        assert_eq!(rng.next_u32(), 0x28bd_8653);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = a.clone();
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.gen_range(0usize..97), b.gen_range(0usize..97));
        assert_eq!(a.gen_bool(0.25), b.gen_bool(0.25));
    }
}
