//! Minimal random-number traits, API- and bit-compatible with the subset
//! of `rand` 0.8 this workspace uses: `RngCore`, `SeedableRng` (including
//! the SplitMix64-based `seed_from_u64` default), and `Rng::{gen, gen_bool,
//! gen_range}` with the exact sampling algorithms of rand 0.8 (Lemire-style
//! widening-multiply rejection for integer ranges, 64-bit fixed-point
//! comparison for Bernoulli), so that a given generator yields the same
//! values as the real crates.

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// byte-identical to `rand_core` 0.6.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible directly from raw generator output (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Samples a uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: one bit from the top of next_u32.
        rng.next_u32() & (1 << 31) != 0
    }
}

/// Widening multiply, returning `(high, low)` words of the product.
trait WideningMul: Copy {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    fn wmul(self, other: Self) -> (Self, Self) {
        let p = u64::from(self) * u64::from(other);
        ((p >> 32) as u32, p as u32)
    }
}

impl WideningMul for u64 {
    fn wmul(self, other: Self) -> (Self, Self) {
        let p = u128::from(self) * u128::from(other);
        ((p >> 64) as u64, p as u64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range, consuming it.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range {
    ($($ty:ty, $unsigned:ty, $u_large:ty);* $(;)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_inclusive_impl!(self.start, self.end - 1, rng, $ty, $unsigned, $u_large)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                sample_inclusive_impl!(*self.start(), *self.end(), rng, $ty, $unsigned, $u_large)
            }
        }
    )*};
}

/// `sample_single_inclusive` of rand 0.8's `UniformInt`, verbatim.
macro_rules! sample_inclusive_impl {
    ($low:expr, $high:expr, $rng:expr, $ty:ty, $unsigned:ty, $u_large:ty) => {{
        let low = $low;
        let high = $high;
        let range =
            (high as $unsigned).wrapping_sub(low as $unsigned).wrapping_add(1) as $u_large;
        if range == 0 {
            // The range covers the whole type.
            <$u_large as Standard>::sample($rng) as $ty
        } else {
            let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                let unsigned_max = <$u_large>::MAX;
                let ints_to_reject = (unsigned_max - range + 1) % range;
                unsigned_max - ints_to_reject
            } else {
                (range << range.leading_zeros()).wrapping_sub(1)
            };
            loop {
                let v = <$u_large as Standard>::sample($rng);
                let (hi, lo) = v.wmul(range);
                if lo <= zone {
                    break low.wrapping_add(hi as $ty);
                }
            }
        }
    }};
}

impl_range! {
    u8, u8, u32;
    u16, u16, u32;
    u32, u32, u32;
    u64, u64, u64;
    usize, usize, u64;
    i8, u8, u32;
    i16, u16, u32;
    i32, u32, u32;
    i64, u64, u64;
    isize, usize, u64;
}

/// User-facing generator methods.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its full distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` — bit-compatible with rand 0.8's
    /// `Bernoulli`.
    fn gen_bool(&mut self, p: f64) -> bool {
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        if p == 1.0 {
            // rand 0.8's ALWAYS_TRUE marker: no RNG draw at all.
            return true;
        }
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Placeholder module mirroring `rand::rngs` (unused by the workspace).
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}
