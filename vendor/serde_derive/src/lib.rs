//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim.
//!
//! Hand-written against the raw `proc_macro` API (no `syn`/`quote`):
//! parses non-generic structs and enums — named fields, tuple fields, and
//! unit/tuple/struct enum variants — and emits impls of the shim's
//! `Serialize`/`Deserialize` traits over its `Value` data model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The field shape of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// A parsed derive target.
enum Target {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at the
/// cursor position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — the bracket group follows.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Consumes tokens until a comma at angle-bracket depth zero, returning the
/// index just past the comma (or the end).
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while let Some(tt) = tokens.get(i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses the named fields inside a brace group.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // field name
        i += 1; // `:`
        i = skip_to_comma(&tokens, i);
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant paren group.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_to_comma(&tokens, i);
    }
    count
}

/// Parses the enum variants inside a brace group.
fn parse_variants(group: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                i += 1;
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        i = skip_to_comma(&tokens, i);
    }
    variants
}

/// Parses the derive input into a [`Target`]. Panics on generics — the
/// workspace derives only on concrete types.
fn parse_target(input: TokenStream) -> Target {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim does not support generic types ({name})");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Target::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Target::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    let out = match &target {
        Target::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::serialize(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Target::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), {payload})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(names) => {
                        let entries: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            names.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    let out = match &target {
        Target::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::deserialize(__v.field(\"{f}\")?)?")
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            format!("::serde::Deserialize::deserialize(__v.seq_item({i})?)?")
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Target::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),")
                    }
                    Fields::Tuple(1) => format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize(__payload)?)),"
                    ),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::deserialize(__payload.seq_item({i})?)?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}({})),",
                            items.join(", ")
                        )
                    }
                    Fields::Named(names) => {
                        let inits: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize(\
                                     __payload.field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         let (__tag, __payload) = __v.variant()?;\n\
                         match __tag {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
