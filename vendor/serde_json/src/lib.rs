//! JSON serialization over the vendored serde shim.
//!
//! Provides the `to_string` / `from_str` subset of the real `serde_json`
//! API. Structs render as JSON objects, sequences as arrays, enums in the
//! externally-tagged form (`"Variant"` or `{"Variant": payload}`) — exactly
//! the shape the shim's `Value` data model produces, so any derived type
//! round-trips losslessly.

use serde::{Deserialize, Serialize, Value};

/// A JSON (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indentation), the
/// shape checked-in artifacts like `BENCH_memo.json` use so diffs stay
/// line-per-field.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.serialize(), &mut out, 0)?;
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            // `{:?}` prints the shortest representation that round-trips.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) -> Result<(), Error> {
    let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_value_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1)?;
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        // Scalars and empty containers render as in compact form.
        _ => write_value(v, out)?,
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }
}
