//! Minimal property-testing harness, API-compatible with the subset of
//! `proptest` 1.x this workspace uses: `Strategy` + `prop_map`, tuple and
//! integer-range strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop_oneof!`, and the `proptest!` macro in both its block form
//! (`proptest! { #![proptest_config(..)] #[test] fn name(x in strat) {..} }`)
//! and its inline closure form (`proptest!(cfg, |(x in strat)| {..})`).
//!
//! No shrinking: a failing case panics with the case number and message.
//! Generation is deterministic (fixed ChaCha8 seed), so failures reproduce.

pub mod test_runner {
    //! The test runner: configuration and deterministic RNG.

    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Configuration accepted by `proptest!`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The deterministic RNG driving strategy generation.
    pub struct TestRng {
        inner: ChaCha8Rng,
    }

    impl TestRng {
        /// A fresh deterministic generator.
        #[must_use]
        pub fn deterministic() -> Self {
            TestRng {
                inner: ChaCha8Rng::seed_from_u64(0x7072_6f70_7465_7374),
            }
        }

        /// A uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            use rand::Rng;
            self.inner.gen_range(0..bound)
        }

        /// A uniform `u64`.
        pub fn next(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }

        /// A uniform `i64` in `[lo, hi)`.
        pub fn in_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
            use rand::Rng;
            self.inner.gen_range(lo..hi)
        }

        /// A uniform `u64` in `[lo, hi)`.
        pub fn in_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            use rand::Rng;
            self.inner.gen_range(lo..hi)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between strategies (the `prop_oneof!` backend).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given options (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// A strategy producing a fixed (cloned) value.
    #[derive(Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_unsigned_range {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_range_u64(self.start as u64, self.end as u64) as $ty
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    if hi == u64::MAX {
                        return rng.next() as $ty;
                    }
                    rng.in_range_u64(lo, hi + 1) as $ty
                }
            }
        )*};
    }

    impl_unsigned_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_range_i64(self.start as i64, self.end as i64) as $ty
                }
            }
        )*};
    }

    impl_signed_range!(i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<char> {
        type Value = char;

        fn generate(&self, rng: &mut TestRng) -> char {
            assert!(self.start < self.end, "empty range strategy");
            loop {
                let c = rng.in_range_u64(self.start as u64, self.end as u64) as u32;
                if let Some(c) = char::from_u32(c) {
                    return c;
                }
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Option<S::Value>` (≈75% `Some`, like real proptest).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` values from `inner` about three-quarters of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).

    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs `cfg.cases` cases of a property given as pattern/strategy pairs and
/// a body closure result. Used by the `proptest!` macro expansion.
#[doc(hidden)]
pub fn __run_cases(
    cases: u32,
    mut case: impl FnMut(&mut test_runner::TestRng) -> Result<(), String>,
) {
    let mut rng = test_runner::TestRng::deterministic();
    for i in 0..cases {
        if let Err(msg) = case(&mut rng) {
            panic!("proptest case {i} failed: {msg}");
        }
    }
}

/// The property-test macro. Supports the block form with optional
/// `#![proptest_config(..)]` and the inline `(cfg, |(pat in strat)| {..})`
/// form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($cfg:expr, |($($pat:pat in $strat:expr),+ $(,)?)| $body:block) => {{
        let __cfg: $crate::test_runner::ProptestConfig = $cfg;
        $crate::__run_cases(__cfg.cases, |__rng| {
            $(let $pat = $crate::strategy::Strategy::generate(&$strat, __rng);)+
            $body
            Ok(())
        });
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Expands each `fn name(pat in strat, ..) { body }` item of a `proptest!`
/// block into a zero-argument test function running the case loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                $crate::__run_cases(__cfg.cases, |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&$strat, __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Uniform choice between strategy expressions producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let __l = $lhs;
        let __r = $rhs;
        if !(__l == __r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l,
                __r
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let __l = $lhs;
        let __r = $rhs;
        if !(__l == __r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let __l = $lhs;
        let __r = $rhs;
        if __l == __r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l,
                __r
            ));
        }
    }};
}
