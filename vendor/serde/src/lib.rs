//! Minimal serialization framework, API-compatible with the subset of
//! `serde` this workspace uses: `#[derive(Serialize, Deserialize)]` on
//! non-generic structs and enums, plus impls for the std types that appear
//! in their fields.
//!
//! The data model is a self-describing [`Value`] tree; formats (JSON via
//! the vendored `serde_json`) render and parse that tree. The derive
//! macros live in the vendored `serde_derive` crate.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unit / `None` / unit enum variant payload.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer (only used when negative or explicitly signed).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (tuples, vectors, tuple structs).
    Seq(Vec<Value>),
    /// A map with string keys (structs, externally-tagged enum variants).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a struct field by name.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as an externally-tagged enum: a one-entry map
    /// (payload-carrying variant) or a bare string (unit variant).
    pub fn variant(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            Value::Str(s) => Ok((s.as_str(), &Value::Null)),
            other => Err(Error::new(format!(
                "expected enum variant, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as a sequence.
    pub fn seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// Element `i` of a sequence.
    pub fn seq_item(&self, i: usize) -> Result<&Value, Error> {
        let items = self.seq()?;
        items
            .get(i)
            .ok_or_else(|| Error::new(format!("sequence too short: no element {i}")))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "unsigned integer",
            Value::I64(_) => "signed integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(n) => Ok(n),
            Value::I64(n) if n >= 0 => Ok(n as u64),
            ref other => Err(Error::new(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(n) => Ok(n),
            Value::U64(n) => i64::try_from(n)
                .map_err(|_| Error::new("unsigned integer out of i64 range".to_string())),
            ref other => Err(Error::new(format!(
                "expected signed integer, found {}",
                other.kind()
            ))),
        }
    }
}

/// A (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(msg: String) -> Self {
        Error { msg }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Types that can reconstruct themselves from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type from `v`.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64()?;
                <$ty>::try_from(n).map_err(|_| {
                    Error::new(format!("{n} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64()?;
                <$ty>::try_from(n).map_err(|_| {
                    Error::new(format!("{n} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        usize::try_from(v.as_u64()?).map_err(|_| Error::new("out of usize range".to_string()))
    }
}

impl Serialize for isize {
    fn serialize(&self) -> Value {
        (*self as i64).serialize()
    }
}

impl Deserialize for isize {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        isize::try_from(v.as_i64()?).map_err(|_| Error::new("out of isize range".to_string()))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(Error::new(format!(
                "expected float, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize(v)? as f32)
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = String::deserialize(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string".to_string())),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::new(format!("expected null, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Arc::new(T::deserialize(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Rc::new(T::deserialize(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.seq()?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S> Deserialize for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.seq()?
            .iter()
            .map(|pair| Ok((K::deserialize(pair.seq_item(0)?)?, V::deserialize(pair.seq_item(1)?)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.seq()?
            .iter()
            .map(|pair| Ok((K::deserialize(pair.seq_item(0)?)?, V::deserialize(pair.seq_item(1)?)?)))
            .collect()
    }
}

impl<K: Serialize + Eq + Hash, S> Serialize for std::collections::HashSet<K, S> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<K: Deserialize + Eq + Hash, S> Deserialize for std::collections::HashSet<K, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.seq()?.iter().map(K::deserialize).collect()
    }
}

impl<K: Serialize + Ord> Serialize for std::collections::BTreeSet<K> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<K: Deserialize + Ord> Deserialize for std::collections::BTreeSet<K> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.seq()?.iter().map(K::deserialize).collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                Ok(($($name::deserialize(v.seq_item($idx)?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}
